//! Client-side load generation and measurement for live chains.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded};
use ntier_des::ids::{ReplicaId, TierId};
use ntier_des::time::SimDuration;
use ntier_resilience::{CallerPolicy, CircuitBreaker, HedgeDelay, HedgePolicy, TokenBucket};
use ntier_trace::{TerminalClass, TraceEventKind, TraceSink};
use parking_lot::Mutex;

use crate::policy::{wall, WallClock};
use crate::tier::{CancelToken, LiveRequest, Tier};
use crate::LiveError;

/// What a burst produced.
#[derive(Debug, Clone)]
pub struct BurstOutcome {
    /// Requests that completed within the deadline.
    pub completed: usize,
    /// Requests still unanswered at the deadline.
    pub timed_out: usize,
    /// End-to-end latencies of completed requests.
    pub latencies: Vec<Duration>,
    /// Client-side retransmissions (front-tier drops seen by clients).
    pub client_retransmits: u64,
}

impl BurstOutcome {
    /// The largest completed latency (zero when nothing completed).
    pub fn max_latency(&self) -> Duration {
        self.latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Completed requests slower than `threshold`.
    pub fn count_slower_than(&self, threshold: Duration) -> usize {
        self.latencies.iter().filter(|l| **l >= threshold).count()
    }

    /// The latencies as a telemetry histogram (for mode detection and the
    /// same semi-log rendering the simulator reports use). Bucket width
    /// `bucket` — use ~50 ms for second-scale runs, ~10 ms for the
    /// millisecond-scale tests.
    pub fn histogram(&self, bucket: Duration) -> ntier_telemetry::LatencyHistogram {
        let bucket = ntier_des::time::SimDuration::from_secs_f64(bucket.as_secs_f64().max(1e-6));
        let mut h = ntier_telemetry::LatencyHistogram::new(bucket, 2_048);
        for l in &self.latencies {
            h.record(ntier_des::time::SimDuration::from_secs_f64(l.as_secs_f64()));
        }
        h
    }
}

/// Fires `n` simultaneous requests at `front` (one client thread each, like
/// `n` browsers clicking at once), retransmitting front-tier drops after the
/// chain's RTO is the *tier's* job — the client retries after `CLIENT_RTO`.
///
/// Returns once all requests completed or `deadline` elapsed.
///
/// # Errors
///
/// Returns [`LiveError::ClientPanicked`] if a sender thread died instead of
/// handing back its send time.
pub fn fire_burst(
    front: Arc<dyn Tier>,
    n: usize,
    deadline: Duration,
) -> Result<BurstOutcome, LiveError> {
    fire_burst_with_rto(front, n, deadline, Duration::from_millis(250))
}

/// [`fire_burst`] with an explicit client retransmission timeout.
///
/// # Errors
///
/// Returns [`LiveError::ClientPanicked`] if a sender thread died instead of
/// handing back its send time.
pub fn fire_burst_with_rto(
    front: Arc<dyn Tier>,
    n: usize,
    deadline: Duration,
    client_rto: Duration,
) -> Result<BurstOutcome, LiveError> {
    burst_inner(front, n, deadline, client_rto, None)
}

/// [`fire_burst_with_rto`] recording every request into `sink`: the client
/// side stamps the `client_send`, front-tier `syn_drop`s (with their RTO
/// ordinal) and the terminal class, while a chain built with
/// [`crate::chain::ChainBuilder::trace`] on the same sink stamps the
/// per-tier enqueue/service/reap events — together they mirror the DES
/// engine's span vocabulary on wall-clock time. Requests still unanswered at
/// the deadline are closed as `Failed`; read the result with
/// [`TraceSink::log`].
///
/// # Errors
///
/// Returns [`LiveError::ClientPanicked`] if a sender thread died instead of
/// handing back its send time.
pub fn fire_burst_traced(
    front: Arc<dyn Tier>,
    n: usize,
    deadline: Duration,
    client_rto: Duration,
    sink: Arc<TraceSink>,
) -> Result<BurstOutcome, LiveError> {
    burst_inner(front, n, deadline, client_rto, Some(sink))
}

fn burst_inner(
    front: Arc<dyn Tier>,
    n: usize,
    deadline: Duration,
    client_rto: Duration,
    trace: Option<Arc<TraceSink>>,
) -> Result<BurstOutcome, LiveError> {
    let (reply_tx, reply_rx) = unbounded();
    let retransmits = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut senders = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let front = front.clone();
        let reply_tx = reply_tx.clone();
        let retransmits = retransmits.clone();
        let trace = trace.clone();
        senders.push(std::thread::spawn(move || {
            if let Some(sink) = &trace {
                sink.begin(id, "live");
            }
            let sent_at = Instant::now();
            let mut req = LiveRequest::new(id, sent_at, reply_tx);
            let mut drop_no: u8 = 0;
            loop {
                match front.submit(req) {
                    Ok(()) => break,
                    Err(back) => {
                        req = back;
                        retransmits.fetch_add(1, Ordering::Relaxed);
                        if let Some(sink) = &trace {
                            sink.record(
                                id,
                                TraceEventKind::SynDrop {
                                    tier: TierId::ROOT,
                                    replica: ReplicaId::FIRST,
                                    retransmit_no: drop_no,
                                },
                            );
                        }
                        drop_no = drop_no.saturating_add(1);
                        std::thread::sleep(client_rto);
                    }
                }
            }
            sent_at
        }));
    }
    let sent_ats: Vec<Instant> = senders
        .into_iter()
        .map(|h| h.join().map_err(|_| LiveError::ClientPanicked))
        .collect::<Result<_, _>>()?;
    drop(reply_tx);

    let mut latencies = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut completed = 0;
    while completed < n {
        let remaining = deadline
            .checked_sub(start.elapsed())
            .unwrap_or(Duration::ZERO);
        match reply_rx.recv_timeout(remaining) {
            Ok(reply) => {
                completed += 1;
                if let Some(d) = done.get_mut(reply.id as usize) {
                    *d = true;
                }
                if let Some(sink) = &trace {
                    sink.end(reply.id, TerminalClass::Completed);
                }
                latencies.push(
                    reply
                        .completed_at
                        .duration_since(sent_ats[reply.id as usize]),
                );
            }
            Err(_) => break,
        }
    }
    if let Some(sink) = &trace {
        for (id, d) in done.iter().enumerate() {
            if !d {
                sink.end(id as u64, TerminalClass::Failed);
            }
        }
    }
    Ok(BurstOutcome {
        completed,
        timed_out: n - completed,
        latencies,
        client_retransmits: retransmits.load(Ordering::Relaxed),
    })
}

/// What a policy-driven burst produced. Unlike [`BurstOutcome`], a request
/// can end three ways — completed, failed (timeout/retry exhaustion), or
/// shed (refused by the circuit breaker without being sent) — mirroring the
/// simulator's terminal classes.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Requests whose reply arrived within some attempt's timeout.
    pub completed: usize,
    /// Requests that exhausted their retries (or budget) and gave up.
    pub failed: usize,
    /// Requests refused by an open breaker.
    pub shed: usize,
    /// End-to-end latencies of completed requests, measured from the
    /// *first* attempt's send time — retries don't reset the clock.
    pub latencies: Vec<Duration>,
    /// Attempt timeouts observed across all requests.
    pub timeouts: u64,
    /// Retry attempts actually sent.
    pub retries: u64,
    /// Front-tier drops observed by clients (instant NACKs).
    pub front_drops: u64,
    /// Backup (hedge) attempts actually sent.
    pub hedges: u64,
    /// Losing attempts the clients cancelled (winner decided, or the
    /// logical deadline passed). The chain-side effect is visible in
    /// [`crate::Chain::reaped`].
    pub cancels: u64,
}

impl PolicyOutcome {
    /// Every request reached exactly one terminal class.
    pub fn is_conserved(&self, n: usize) -> bool {
        self.completed + self.failed + self.shed == n
    }

    /// The largest completed latency (zero when nothing completed).
    pub fn max_latency(&self) -> Duration {
        self.latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Completed requests slower than `threshold`.
    pub fn count_slower_than(&self, threshold: Duration) -> usize {
        self.latencies.iter().filter(|l| **l >= threshold).count()
    }
}

/// How one attempt of a policy-driven request ended.
enum AttemptEnd {
    Completed(Duration),
    TimedOut,
    Dropped,
}

/// Per-client tally handed back from a sender thread.
struct ClientEnd {
    /// 0 = completed, 1 = failed, 2 = shed.
    class: u8,
    latency: Option<Duration>,
    timeouts: u64,
    retries: u64,
    front_drops: u64,
    hedges: u64,
    cancels: u64,
}

impl ClientEnd {
    /// A fresh tally, pessimistically classed as failed.
    fn failed() -> Self {
        ClientEnd {
            class: 1,
            latency: None,
            timeouts: 0,
            retries: 0,
            front_drops: 0,
            hedges: 0,
            cancels: 0,
        }
    }
}

/// Fires `n` simultaneous requests, each governed by the *same*
/// [`CallerPolicy`] the simulator's clients use — attempt timeout, bounded
/// retries with capped backoff + deterministic per-request jitter, a shared
/// token-bucket retry budget, and a shared circuit breaker — so the
/// real-thread testbed can cross-validate the DES engine's resilience
/// semantics. A front-tier drop is an instant NACK handled by the same
/// retry path (application-level recovery replaces the kernel RTO).
///
/// A timed-out attempt is orphaned, exactly as in the simulator: its reply
/// channel is dropped, the chain keeps processing it, and a late reply is
/// discarded.
///
/// When the policy carries a [`HedgePolicy`], the sequential retry loop is
/// replaced by the simulator's hedged semantics: `attempt_timeout` becomes
/// the *whole-logical* deadline, backup attempts launch after the hedge
/// delay (metered by the hedge budget when one is set), and the first reply
/// wins. With a `CancelPolicy` the losing attempts are cancelled through
/// their [`CancelToken`]s — tiers discard them at dequeue instead of
/// servicing orphans (`hop_delay` is not simulated; shared memory is the
/// wire). Retries are ignored in hedged mode, exactly as in the engine.
///
/// # Errors
///
/// Returns [`LiveError::ClientPanicked`] if a sender thread died.
pub fn fire_burst_with_policy(
    front: Arc<dyn Tier>,
    n: usize,
    policy: &CallerPolicy,
) -> Result<PolicyOutcome, LiveError> {
    let clock = WallClock::new();
    let breaker = policy
        .breaker
        .map(|cfg| Arc::new(Mutex::new(CircuitBreaker::new(cfg))));
    let attempt_timeout = wall(policy.attempt_timeout);

    if let Some(hedge) = policy.hedge {
        let shared = Arc::new(HedgeShared {
            front,
            hedge,
            cancel_losers: policy.cancel.is_some(),
            deadline: attempt_timeout,
            clock,
            breaker,
            bucket: hedge
                .budget
                .map(|b| Mutex::new(TokenBucket::new(b, clock.now()))),
            observed: Mutex::new(ntier_telemetry::LatencyHistogram::new(
                SimDuration::from_millis(10),
                2_048,
            )),
        });
        let clients: Vec<_> = (0..n as u64)
            .map(|id| {
                let shared = shared.clone();
                std::thread::spawn(move || hedged_client(&shared, id))
            })
            .collect();
        return collect_clients(clients, n);
    }

    let bucket = policy
        .budget
        .map(|b| Arc::new(Mutex::new(TokenBucket::new(b, clock.now()))));
    let mut clients = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let front = front.clone();
        let retry = policy.retry;
        let breaker = breaker.clone();
        let bucket = bucket.clone();
        clients.push(std::thread::spawn(move || {
            let mut end = ClientEnd::failed();
            // Initial admission: an open breaker fast-fails the request.
            if let Some(br) = &breaker {
                if !br.lock().try_acquire(clock.now()) {
                    end.class = 2;
                    return end;
                }
            }
            let first_sent = Instant::now();
            let mut attempt: u32 = 0;
            loop {
                let (tx, rx) = bounded(1);
                let req = LiveRequest::new(id, first_sent, tx);
                let outcome = match front.submit(req) {
                    Err(_) => {
                        end.front_drops += 1;
                        AttemptEnd::Dropped
                    }
                    Ok(()) => match rx.recv_timeout(attempt_timeout) {
                        Ok(reply) => {
                            AttemptEnd::Completed(reply.completed_at.duration_since(first_sent))
                        }
                        Err(_) => AttemptEnd::TimedOut,
                    },
                };
                match outcome {
                    AttemptEnd::Completed(lat) => {
                        if let Some(br) = &breaker {
                            br.lock().on_success(clock.now());
                        }
                        end.class = 0;
                        end.latency = Some(lat);
                        return end;
                    }
                    AttemptEnd::TimedOut | AttemptEnd::Dropped => {
                        if matches!(outcome, AttemptEnd::TimedOut) {
                            end.timeouts += 1;
                        }
                        if let Some(br) = &breaker {
                            br.lock().on_failure(clock.now());
                        }
                        // Retry admission: bound, then budget, then breaker
                        // — the simulator's order.
                        let Some(r) = retry.as_ref().filter(|r| r.allows(attempt)) else {
                            return end; // failed
                        };
                        if let Some(b) = &bucket {
                            if !b.lock().try_withdraw(clock.now()) {
                                return end; // failed: budget exhausted
                            }
                        }
                        if let Some(br) = &breaker {
                            if !br.lock().try_acquire(clock.now()) {
                                end.class = 2;
                                return end; // shed: breaker open
                            }
                        }
                        end.retries += 1;
                        // Deterministic per-(request, attempt) jitter unit —
                        // no RNG needed off the simulated clock.
                        let unit = f64::from(
                            (id as u32)
                                .wrapping_mul(2_654_435_761)
                                .wrapping_add(attempt * 40_503)
                                % 1_000,
                        ) / 1_000.0;
                        std::thread::sleep(wall(r.backoff_for(attempt, unit)));
                        attempt += 1;
                    }
                }
            }
        }));
    }
    collect_clients(clients, n)
}

/// Joins the client threads into an aggregate [`PolicyOutcome`].
fn collect_clients(
    clients: Vec<std::thread::JoinHandle<ClientEnd>>,
    n: usize,
) -> Result<PolicyOutcome, LiveError> {
    let mut out = PolicyOutcome {
        completed: 0,
        failed: 0,
        shed: 0,
        latencies: Vec::with_capacity(n),
        timeouts: 0,
        retries: 0,
        front_drops: 0,
        hedges: 0,
        cancels: 0,
    };
    for h in clients {
        let end = h.join().map_err(|_| LiveError::ClientPanicked)?;
        match end.class {
            0 => out.completed += 1,
            2 => out.shed += 1,
            _ => out.failed += 1,
        }
        if let Some(l) = end.latency {
            out.latencies.push(l);
        }
        out.timeouts += end.timeouts;
        out.retries += end.retries;
        out.front_drops += end.front_drops;
        out.hedges += end.hedges;
        out.cancels += end.cancels;
    }
    Ok(out)
}

/// State shared by every client of a hedged burst.
struct HedgeShared {
    front: Arc<dyn Tier>,
    hedge: HedgePolicy,
    cancel_losers: bool,
    /// The whole-logical deadline (`CallerPolicy::attempt_timeout`).
    deadline: Duration,
    clock: WallClock,
    breaker: Option<Arc<Mutex<CircuitBreaker>>>,
    /// The hedge budget (`HedgePolicy::budget`), shared caller-wide.
    bucket: Option<Mutex<TokenBucket>>,
    /// Completed latencies, feeding [`HedgeDelay::Quantile`] resolution.
    observed: Mutex<ntier_telemetry::LatencyHistogram>,
}

impl HedgeShared {
    /// The wall-clock delay before the next hedge, resolving quantile
    /// tracking against the latencies this burst has completed so far.
    fn hedge_delay(&self) -> Duration {
        let observed = match self.hedge.delay {
            HedgeDelay::Quantile { q, .. } => self.observed.lock().quantile(q),
            HedgeDelay::Fixed(_) => None,
        };
        wall(self.hedge.delay.resolve(observed))
    }
}

/// One hedged logical request: fire the primary, launch backups on the
/// hedge timer, take the first reply, and (with cancellation enabled) chase
/// the losers down via their [`CancelToken`]s.
fn hedged_client(sh: &HedgeShared, id: u64) -> ClientEnd {
    let mut end = ClientEnd::failed();
    // Initial admission: an open breaker fast-fails the logical request.
    if let Some(br) = &sh.breaker {
        if !br.lock().try_acquire(sh.clock.now()) {
            end.class = 2;
            return end;
        }
    }
    let first_sent = Instant::now();
    let deadline_at = first_sent + sh.deadline;
    // Every attempt of this logical request answers on one channel; the
    // first reply wins. A front-dropped attempt is simply dead — hedged
    // mode replaces the retransmit ladder with the next hedge.
    let (tx, rx) = bounded(sh.hedge.max_hedges as usize + 1);
    let mut tokens: Vec<CancelToken> = Vec::new();
    let launch = |end: &mut ClientEnd, tokens: &mut Vec<CancelToken>| {
        let req = LiveRequest::new(id, first_sent, tx.clone());
        let token = req.cancel.clone();
        match sh.front.submit(req) {
            Ok(()) => tokens.push(token),
            Err(_) => end.front_drops += 1,
        }
    };
    launch(&mut end, &mut tokens);
    let mut hedges_fired: u32 = 0;
    let mut next_hedge_at = first_sent + sh.hedge_delay();
    loop {
        let now = Instant::now();
        if now >= deadline_at {
            break; // failed: the logical deadline passed
        }
        if tokens.is_empty() && hedges_fired >= sh.hedge.max_hedges {
            break; // every attempt was dropped and no hedges remain
        }
        let wake_at = if hedges_fired < sh.hedge.max_hedges {
            next_hedge_at.min(deadline_at)
        } else {
            deadline_at
        };
        match rx.recv_timeout(wake_at.saturating_duration_since(now)) {
            Ok(reply) => {
                if let Some(br) = &sh.breaker {
                    br.lock().on_success(sh.clock.now());
                }
                let lat = reply.completed_at.duration_since(first_sent);
                sh.observed
                    .lock()
                    .record(SimDuration::from_secs_f64(lat.as_secs_f64()));
                end.class = 0;
                end.latency = Some(lat);
                if sh.cancel_losers {
                    // Everything else still in flight is a loser. The
                    // winner's token is among these, but it already left
                    // the chain — cancelling it is a no-op.
                    end.cancels += (tokens.len() as u64).saturating_sub(1);
                    for t in &tokens {
                        t.cancel();
                    }
                }
                return end;
            }
            Err(_) => {
                // Woke for the hedge timer (or for the deadline, which the
                // loop top handles).
                if hedges_fired >= sh.hedge.max_hedges || Instant::now() < next_hedge_at {
                    continue;
                }
                hedges_fired += 1;
                if let Some(b) = &sh.bucket {
                    if !b.lock().try_withdraw(sh.clock.now()) {
                        // Budget exhausted: suppress this hedge and the
                        // rest; ride the surviving attempts to the wire.
                        hedges_fired = sh.hedge.max_hedges;
                        continue;
                    }
                }
                end.hedges += 1;
                launch(&mut end, &mut tokens);
                next_hedge_at = Instant::now() + sh.hedge_delay();
            }
        }
    }
    // Failed at the deadline: report it and chase down every attempt still
    // in the chain rather than leaving orphans.
    if let Some(br) = &sh.breaker {
        br.lock().on_failure(sh.clock.now());
    }
    if sh.cancel_losers {
        end.cancels += tokens.len() as u64;
        for t in &tokens {
            t.cancel();
        }
    }
    end
}

/// Drives `front` at a fixed request rate for `duration` from a single
/// pacing thread (plus a collector). Front-tier drops are retried after
/// `client_rto` from the same pacing loop, so no thread explosion occurs at
/// high drop rates.
///
/// Returns once every request completed or `deadline` elapsed.
///
/// # Errors
///
/// Returns [`LiveError::PacerPanicked`] if the pacing thread died.
pub fn fire_sustained(
    front: Arc<dyn Tier>,
    rate_per_sec: f64,
    duration: Duration,
    deadline: Duration,
    client_rto: Duration,
) -> Result<BurstOutcome, LiveError> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let gap = Duration::from_secs_f64(1.0 / rate_per_sec);
    let n = (duration.as_secs_f64() * rate_per_sec).round() as usize;
    let (reply_tx, reply_rx) = unbounded();
    let start = Instant::now();
    let retransmits = Arc::new(AtomicU64::new(0));

    let pacer = {
        let front = front.clone();
        let retransmits = retransmits.clone();
        std::thread::spawn(move || {
            let mut sent_ats: Vec<Option<Instant>> = vec![None; n];
            // (due, request) retry queue, kept sorted by push order (all
            // retries share the same RTO so FIFO order == due order).
            let mut retries: std::collections::VecDeque<(Instant, LiveRequest)> =
                std::collections::VecDeque::new();
            for id in 0..n as u64 {
                let fire_at = start + gap.mul_f64(id as f64);
                // service due retries while waiting for the next send slot
                loop {
                    let now = Instant::now();
                    if retries.front().is_some_and(|(due, _)| *due <= now) {
                        if let Some((_, req)) = retries.pop_front() {
                            if let Err(back) = front.submit(req) {
                                retransmits.fetch_add(1, Ordering::Relaxed);
                                retries.push_back((now + client_rto, back));
                            }
                        }
                        continue;
                    }
                    if now >= fire_at {
                        break;
                    }
                    let next_due = retries.front().map(|(d, _)| *d).unwrap_or(fire_at);
                    std::thread::sleep(
                        next_due
                            .min(fire_at)
                            .saturating_duration_since(now)
                            .min(gap),
                    );
                }
                let sent_at = Instant::now();
                sent_ats[id as usize] = Some(sent_at);
                let req = LiveRequest::new(id, sent_at, reply_tx.clone());
                if let Err(back) = front.submit(req) {
                    retransmits.fetch_add(1, Ordering::Relaxed);
                    retries.push_back((sent_at + client_rto, back));
                }
            }
            // drain the retry queue
            while let Some((due, req)) = retries.pop_front() {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if let Err(back) = front.submit(req) {
                    retransmits.fetch_add(1, Ordering::Relaxed);
                    retries.push_back((Instant::now() + client_rto, back));
                }
            }
            drop(reply_tx);
            sent_ats
        })
    };
    let sent_ats = pacer.join().map_err(|_| LiveError::PacerPanicked)?;

    let mut latencies = Vec::with_capacity(n);
    let mut completed = 0;
    while completed < n {
        let remaining = deadline
            .checked_sub(start.elapsed())
            .unwrap_or(Duration::ZERO);
        match reply_rx.recv_timeout(remaining) {
            Ok(reply) => {
                completed += 1;
                // A reply whose send time was never recorded would mean a
                // duplicate or corrupted id; skip it rather than panic.
                if let Some(sent) = sent_ats.get(reply.id as usize).copied().flatten() {
                    latencies.push(reply.completed_at.duration_since(sent));
                }
            }
            Err(_) => break,
        }
    }
    Ok(BurstOutcome {
        completed,
        timed_out: n - completed,
        latencies,
        client_retransmits: retransmits.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainBuilder, LiveTier};
    use crate::stall::StallGate;

    const SERVICE: Duration = Duration::from_micros(200);

    #[test]
    fn burst_within_capacity_completes_fast() {
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 4, 8, SERVICE))
            .build()
            .expect("spawn chain");
        let outcome = fire_burst(chain.front(), 8, Duration::from_secs(3)).expect("burst");
        assert_eq!(outcome.completed, 8);
        assert_eq!(outcome.client_retransmits, 0);
        assert!(outcome.max_latency() < Duration::from_millis(200));
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn overflow_produces_retransmission_latency_modes() {
        // Capacity 2 workers + 2 backlog = 4; a burst of 12 forces
        // client-side retransmissions: the slow cluster sits >= one RTO.
        let rto = Duration::from_millis(300);
        let chain = ChainBuilder::new(rto)
            .tier(LiveTier::sync("web", 2, 2, Duration::from_millis(20)))
            .build()
            .expect("spawn chain");
        let outcome =
            fire_burst_with_rto(chain.front(), 12, Duration::from_secs(10), rto).expect("burst");
        assert_eq!(outcome.completed, 12);
        assert!(outcome.client_retransmits > 0);
        let slow = outcome.count_slower_than(Duration::from_millis(290));
        let fast = outcome.latencies.len() - slow;
        assert!(slow >= 2, "slow cluster too small: {:?}", outcome.latencies);
        assert!(fast >= 4, "fast cluster too small: {:?}", outcome.latencies);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn upstream_ctqo_live_sync_chain_drops_at_front() {
        // Stall the app tier: web workers block on it (RPC), the web accept
        // queue fills, and the *web* tier drops — upstream CTQO, for real.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(200))
            .tier(LiveTier::sync("web", 2, 2, SERVICE))
            .tier(LiveTier::sync("app", 2, 2, SERVICE).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.begin();
        let front = chain.front();
        let burst = std::thread::spawn(move || {
            fire_burst_with_rto(
                front,
                16,
                Duration::from_secs(10),
                Duration::from_millis(300),
            )
        });
        std::thread::sleep(Duration::from_millis(400));
        gate.end();
        let outcome = burst.join().expect("burst thread").expect("burst");
        let drops = chain.drops();
        assert!(drops[0] > 0, "expected front-tier drops, got {drops:?}");
        assert_eq!(outcome.completed, 16);
        assert!(outcome.count_slower_than(Duration::from_millis(290)) > 0);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn async_chain_absorbs_the_same_millibottleneck() {
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(200))
            .tier(LiveTier::asynchronous("web", 1_000, 2, SERVICE))
            .tier(LiveTier::asynchronous("app", 1_000, 2, SERVICE).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.begin();
        let front = chain.front();
        let burst = std::thread::spawn(move || {
            fire_burst_with_rto(
                front,
                16,
                Duration::from_secs(10),
                Duration::from_millis(300),
            )
        });
        std::thread::sleep(Duration::from_millis(400));
        gate.end();
        let outcome = burst.join().expect("burst thread").expect("burst");
        assert_eq!(chain.drops(), vec![0, 0], "async tiers must not drop");
        assert_eq!(outcome.completed, 16);
        // worst latency ≈ the stall, not the stall + RTO ladder
        assert!(
            outcome.max_latency() < Duration::from_millis(700),
            "max latency {:?}",
            outcome.max_latency()
        );
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn histogram_of_an_overflowed_burst_is_multimodal() {
        let rto = Duration::from_millis(300);
        let chain = ChainBuilder::new(rto)
            .tier(LiveTier::sync("web", 2, 2, Duration::from_millis(5)))
            .build()
            .expect("spawn chain");
        let outcome =
            fire_burst_with_rto(chain.front(), 12, Duration::from_secs(10), rto).expect("burst");
        let h = outcome.histogram(Duration::from_millis(10));
        let modes = h.modes(ntier_des::time::SimDuration::from_millis(100), 2);
        assert!(
            modes.len() >= 2,
            "expected fast + retransmitted clusters: {modes:?}"
        );
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn sustained_load_completes_without_drops_at_moderate_rate() {
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 4, 8, Duration::from_micros(500)))
            .build()
            .expect("spawn chain");
        let outcome = fire_sustained(
            chain.front(),
            400.0,
            Duration::from_millis(500),
            Duration::from_secs(5),
            Duration::from_millis(100),
        )
        .expect("sustained");
        assert_eq!(outcome.timed_out, 0);
        assert_eq!(outcome.client_retransmits, 0);
        assert_eq!(chain.drops(), vec![0]);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn sustained_load_through_a_stall_drops_then_recovers() {
        // λ·d = 400/s × 0.3 s = 120 >> 3 slots: the stall must drop, and
        // every dropped request must still complete via retransmission.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(150))
            .tier(LiveTier::sync("web", 1, 2, Duration::from_micros(200)).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.schedule_stall(Duration::from_millis(100), Duration::from_millis(300));
        let outcome = fire_sustained(
            chain.front(),
            400.0,
            Duration::from_millis(600),
            Duration::from_secs(20),
            Duration::from_millis(150),
        )
        .expect("sustained");
        assert!(outcome.client_retransmits > 0);
        assert!(chain.drops()[0] > 0);
        assert_eq!(outcome.timed_out, 0, "all requests eventually complete");
        assert!(outcome.count_slower_than(Duration::from_millis(140)) > 0);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn downstream_ctqo_async_front_floods_sync_back() {
        // Async front admits everything and floods the tiny sync back tier:
        // drops move downstream — exactly the paper's NX=1 observation.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(200))
            .tier(LiveTier::asynchronous(
                "web",
                1_000,
                4,
                Duration::from_micros(50),
            ))
            .tier(LiveTier::sync("app", 1, 2, Duration::from_millis(1)).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.begin();
        let front = chain.front();
        let burst = std::thread::spawn(move || {
            fire_burst_with_rto(
                front,
                24,
                Duration::from_secs(10),
                Duration::from_millis(300),
            )
        });
        std::thread::sleep(Duration::from_millis(300));
        gate.end();
        let outcome = burst.join().expect("burst thread").expect("burst");
        let drops = chain.drops();
        assert_eq!(drops[0], 0, "async front must not drop: {drops:?}");
        assert!(drops[1] > 0, "expected downstream drops: {drops:?}");
        assert_eq!(outcome.completed, 24);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn traced_burst_mirrors_the_simulator_span_vocabulary() {
        let sink = Arc::new(TraceSink::new());
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 2, 4, SERVICE))
            .tier(LiveTier::sync("app", 2, 4, SERVICE))
            .trace(sink.clone())
            .build()
            .expect("spawn chain");
        let outcome = fire_burst_traced(
            chain.front(),
            6,
            Duration::from_secs(5),
            Duration::from_millis(250),
            sink.clone(),
        )
        .expect("burst");
        assert_eq!(outcome.completed, 6);
        chain.shutdown().expect("clean shutdown");
        let log = sink.log();
        assert_eq!(log.traces.len(), 6);
        for t in &log.traces {
            assert_eq!(t.outcome, TerminalClass::Completed);
            let kinds: Vec<TraceEventKind> = t.events.iter().map(|e| e.kind).collect();
            assert!(kinds.contains(&TraceEventKind::ClientSend { attempt: 0 }));
            for tier in (0..2usize).map(TierId::from) {
                let replica = ReplicaId::FIRST;
                assert!(
                    kinds.contains(&TraceEventKind::Enqueue { tier, replica }),
                    "{kinds:?}"
                );
                assert!(kinds.contains(&TraceEventKind::ServiceStart {
                    tier,
                    replica,
                    visit: 0
                }));
                assert!(kinds.contains(&TraceEventKind::ServiceEnd {
                    tier,
                    replica,
                    visit: 0
                }));
            }
            assert!(t.events.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    #[test]
    fn traced_overflow_records_front_drops_with_rto_ordinals() {
        let rto = Duration::from_millis(300);
        let sink = Arc::new(TraceSink::new());
        let chain = ChainBuilder::new(rto)
            .tier(LiveTier::sync("web", 2, 2, Duration::from_millis(20)))
            .trace(sink.clone())
            .build()
            .expect("spawn chain");
        let outcome = fire_burst_traced(
            chain.front(),
            12,
            Duration::from_secs(10),
            rto,
            sink.clone(),
        )
        .expect("burst");
        assert_eq!(outcome.completed, 12);
        assert!(outcome.client_retransmits > 0);
        chain.shutdown().expect("clean shutdown");
        let log = sink.log();
        let dropped: Vec<_> = log
            .traces
            .iter()
            .filter(|t| t.syn_drops().next().is_some())
            .collect();
        assert!(!dropped.is_empty(), "overflow must leave syn_drop events");
        for t in &dropped {
            let ords: Vec<u8> = t
                .syn_drops()
                .map(|(_, tier, _, no)| {
                    assert_eq!(tier, TierId::ROOT, "drops happen at the front door");
                    no
                })
                .collect();
            let expect: Vec<u8> = (0..ords.len() as u8).collect();
            assert_eq!(ords, expect, "ordinals count up from 0");
        }
    }

    #[test]
    fn traced_downstream_drops_land_on_the_back_tier() {
        // Async front admits everything and floods the tiny sync back tier
        // during its stall: the traces must pin every syn_drop on tier 1,
        // recorded by the forwarding workers' retransmit loops.
        let gate = StallGate::new();
        let sink = Arc::new(TraceSink::new());
        let chain = ChainBuilder::new(Duration::from_millis(200))
            .tier(LiveTier::asynchronous(
                "web",
                1_000,
                4,
                Duration::from_micros(50),
            ))
            .tier(LiveTier::sync("app", 1, 2, Duration::from_millis(1)).with_gate(gate.clone()))
            .trace(sink.clone())
            .build()
            .expect("spawn chain");
        gate.begin();
        let front = chain.front();
        let s = sink.clone();
        let burst = std::thread::spawn(move || {
            fire_burst_traced(
                front,
                24,
                Duration::from_secs(10),
                Duration::from_millis(300),
                s,
            )
        });
        std::thread::sleep(Duration::from_millis(300));
        gate.end();
        let outcome = burst.join().expect("burst thread").expect("burst");
        assert_eq!(outcome.completed, 24);
        chain.shutdown().expect("clean shutdown");
        let log = sink.log();
        let back_drops = log
            .traces
            .iter()
            .flat_map(|t| t.syn_drops())
            .filter(|(_, tier, _, _)| *tier == TierId(1))
            .count();
        assert!(back_drops > 0, "expected tier-1 syn_drop events");
        let front_drops = log
            .traces
            .iter()
            .flat_map(|t| t.syn_drops())
            .filter(|(_, tier, _, _)| *tier == TierId::ROOT)
            .count();
        assert_eq!(front_drops, 0, "async front must not drop");
    }

    #[test]
    fn policy_burst_within_capacity_completes_clean() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::CallerPolicy;
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 4, 8, SERVICE))
            .build()
            .expect("spawn chain");
        let policy = CallerPolicy::naive(SimDuration::from_secs(2), 2);
        let outcome = fire_burst_with_policy(chain.front(), 8, &policy).expect("burst");
        assert!(outcome.is_conserved(8));
        assert_eq!(outcome.completed, 8);
        assert_eq!(outcome.failed + outcome.shed, 0);
        assert_eq!(outcome.timeouts, 0);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn policy_burst_rides_through_a_stall_with_retries() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::{CallerPolicy, RetryPolicy};
        // 300 ms stall vs a 100 ms attempt timeout: first attempts time out
        // and are orphaned; retries after the stall complete. Measured from
        // first send, completions include the stall in their latency.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 4, 32, SERVICE).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.schedule_stall(Duration::ZERO, Duration::from_millis(300));
        std::thread::sleep(Duration::from_millis(20));
        let policy = CallerPolicy {
            attempt_timeout: SimDuration::from_millis(100),
            retry: Some(RetryPolicy::capped(
                6,
                SimDuration::from_millis(50),
                SimDuration::from_millis(150),
            )),
            budget: None,
            breaker: None,
            hedge: None,
            cancel: None,
        };
        let outcome = fire_burst_with_policy(chain.front(), 4, &policy).expect("burst");
        assert!(outcome.is_conserved(4));
        assert_eq!(outcome.completed, 4, "{outcome:?}");
        assert!(outcome.timeouts >= 4, "{outcome:?}");
        assert!(outcome.retries >= 4, "{outcome:?}");
        assert!(
            outcome.max_latency() >= Duration::from_millis(200),
            "{outcome:?}"
        );
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn policy_burst_breaker_sheds_when_chain_is_wedged() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::{BreakerConfig, CallerPolicy, RetryPolicy};
        // The tier stalls for far longer than any attempt: with a
        // 1-failure breaker held open for seconds, the first wave of
        // timeouts trips it and later attempts are shed, not queued.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 2, 32, SERVICE).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.begin();
        let policy = CallerPolicy {
            attempt_timeout: SimDuration::from_millis(80),
            retry: Some(RetryPolicy::capped(
                4,
                SimDuration::from_millis(40),
                SimDuration::from_millis(80),
            )),
            budget: None,
            breaker: Some(BreakerConfig::new(1, SimDuration::from_secs(10))),
            hedge: None,
            cancel: None,
        };
        let outcome = fire_burst_with_policy(chain.front(), 8, &policy).expect("burst");
        gate.end();
        assert!(outcome.is_conserved(8));
        assert_eq!(outcome.completed, 0, "{outcome:?}");
        assert!(outcome.shed > 0, "{outcome:?}");
        assert!(outcome.timeouts > 0, "{outcome:?}");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn hedged_burst_cancels_losers_and_tiers_reap_them() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::{CallerPolicy, CancelPolicy, HedgePolicy};
        // One worker behind a 200 ms stall. Every primary queues during the
        // stall; each client hedges at +60 ms, so the backups queue *behind*
        // all the primaries. As primaries complete, their clients cancel
        // the losing hedges — which the worker must then discard at dequeue
        // instead of servicing. The simulator's cancels_propagated /
        // wasted_work_saved arithmetic, on real threads.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 1, 32, Duration::from_millis(20)).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.schedule_stall(Duration::ZERO, Duration::from_millis(200));
        std::thread::sleep(Duration::from_millis(20));
        let policy = CallerPolicy::hedged(
            SimDuration::from_secs(10),
            HedgePolicy::fixed(SimDuration::from_millis(60), 1),
        )
        .with_cancel(CancelPolicy::new(SimDuration::from_micros(50)));
        let outcome = fire_burst_with_policy(chain.front(), 4, &policy).expect("burst");
        assert!(outcome.is_conserved(4));
        assert_eq!(outcome.completed, 4, "{outcome:?}");
        assert_eq!(outcome.hedges, 4, "{outcome:?}");
        assert_eq!(outcome.cancels, 4, "{outcome:?}");
        // The losers must be discarded by the worker, not serviced: give it
        // a beat to drain the queue, then check the reap counter.
        std::thread::sleep(Duration::from_millis(150));
        let reaped = chain.reaped();
        assert!(reaped[0] >= 3, "losers must be reaped, got {reaped:?}");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn hedged_without_cancel_leaves_orphans_to_run() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::{CallerPolicy, HedgePolicy};
        // The same plant without a CancelPolicy: the losing hedges are
        // orphans — the tier services every one of them for nothing.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 1, 32, Duration::from_millis(20)).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.schedule_stall(Duration::ZERO, Duration::from_millis(200));
        std::thread::sleep(Duration::from_millis(20));
        let policy = CallerPolicy::hedged(
            SimDuration::from_secs(10),
            HedgePolicy::fixed(SimDuration::from_millis(60), 1),
        );
        let outcome = fire_burst_with_policy(chain.front(), 4, &policy).expect("burst");
        assert!(outcome.is_conserved(4));
        assert_eq!(outcome.completed, 4, "{outcome:?}");
        assert_eq!(outcome.cancels, 0, "{outcome:?}");
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(chain.reaped(), vec![0], "orphans must not be reaped");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn hedged_attempts_rescue_front_dropped_primaries() {
        use ntier_des::time::SimDuration;
        use ntier_resilience::{CallerPolicy, CancelPolicy, HedgePolicy};
        // Capacity 1 worker + 1 backlog = 2 during a 150 ms stall: most of
        // the 6 primaries are NACKed at the front door and die (hedged mode
        // has no retransmit ladder). The hedge timer is the recovery path:
        // backups at +200 ms and +400 ms land after the stall on a drained
        // queue. K = 2 covers two consecutive full-queue collisions.
        let gate = StallGate::new();
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 1, 1, Duration::from_millis(10)).with_gate(gate.clone()))
            .build()
            .expect("spawn chain");
        gate.schedule_stall(Duration::ZERO, Duration::from_millis(150));
        std::thread::sleep(Duration::from_millis(20));
        let policy = CallerPolicy::hedged(
            SimDuration::from_secs(10),
            HedgePolicy::fixed(SimDuration::from_millis(200), 2),
        )
        .with_cancel(CancelPolicy::new(SimDuration::from_micros(50)));
        let outcome = fire_burst_with_policy(chain.front(), 6, &policy).expect("burst");
        assert!(outcome.is_conserved(6));
        assert_eq!(outcome.completed, 6, "{outcome:?}");
        assert!(outcome.front_drops > 0, "{outcome:?}");
        assert!(outcome.hedges > 0, "{outcome:?}");
        chain.shutdown().expect("clean shutdown");
    }
}
