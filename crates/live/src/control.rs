//! Wall-clock mirror of the simulator's control plane.
//!
//! The DES engine drives [`ntier_control::Controller`] from a
//! step-synchronous tick event; the live testbed drives the *same pure
//! controller* from real time. One decision path, two clocks — exactly the
//! arrangement `policy::WallClock` gives the resilience policies.
//!
//! A [`LiveController`] samples a running [`Chain`] (per-replica depths and
//! drop deltas via [`Chain::depths`]/[`Chain::replica_drops`]), projects
//! the sample onto an [`Observation`], and hands back the controller's
//! [`Directive`]s. The live chain's topology is fixed at spawn, so
//! structural directives (add/drain replica) are returned to the caller as
//! advice rather than actuated in place; policy directives (hedge delay,
//! AIMD bounds, brake) map onto whatever the harness's caller policy
//! exposes. Tests assert on the *decision stream* — the part the simulator
//! and the testbed must agree on.

use ntier_control::{
    ControlConfig, ControlLog, Controller, Directive, Observation, ReplicaObs, TierObs,
};
use ntier_des::rng::SimRng;
use ntier_telemetry::QuantileSketch;

use crate::chain::Chain;
use crate::policy::WallClock;

/// Goodput counters for one tick window, supplied by the harness (the
/// chain itself cannot see client-side completions). All fields are
/// run-to-date totals; the controller differences them internally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveCounters {
    /// Fresh client sends so far.
    pub injected: u64,
    /// Completed requests so far.
    pub completed: u64,
    /// Application-level retries fired so far.
    pub retries: u64,
    /// Hedge attempts fired so far.
    pub hedges: u64,
}

/// The wall-clock control loop: one [`Controller`] fed from chain samples.
#[derive(Debug)]
pub struct LiveController {
    ctl: Controller,
    rng: SimRng,
    clock: WallClock,
    prev: LiveCounters,
    prev_drops: Vec<Vec<u64>>,
    prev_retransmits: Vec<u64>,
    /// Per-tick latency window — the same mergeable sketch the DES engine
    /// feeds its controller from, here fed wall-clock durations.
    window: QuantileSketch,
    hedge_q: Option<f64>,
}

impl LiveController {
    /// Builds the controller for `chain`. `seed` feeds the controller's
    /// dedicated rng fork (drain-victim tie-breaks) — the same fork label
    /// the engine uses, so a live run and a simulated run with identical
    /// observation streams make identical decisions.
    pub fn new(cfg: ControlConfig, chain: &Chain, seed: u64) -> Self {
        let prev_drops = (0..chain.drops().len())
            .map(|i| {
                chain
                    .replica_drops(i)
                    .unwrap_or_else(|| vec![chain.drops()[i]])
            })
            .collect();
        let hedge_q = cfg
            .tuner
            .as_ref()
            .and_then(|t| t.hedge.as_ref())
            .map(|h| h.q);
        LiveController {
            ctl: Controller::new(cfg),
            rng: SimRng::seed_from(seed).fork("control"),
            clock: WallClock::new(),
            prev: LiveCounters::default(),
            prev_drops,
            prev_retransmits: chain.retransmits(),
            window: QuantileSketch::new(),
            hedge_q,
        }
    }

    /// Feeds one completed request's wall-clock latency into the current
    /// tick window. The harness calls this per completion; the next
    /// [`LiveController::tick`] reads the window's quantiles and resets it.
    pub fn observe_latency(&mut self, latency: std::time::Duration) {
        self.window
            .record_micros(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// One observation/decision step against the running chain. Call this
    /// every `cfg.tick` of wall time (the tick pacing is the caller's —
    /// typically the harness's pacing thread).
    ///
    /// Live tiers cannot observe per-drop retransmit ordinals, so the
    /// ladder signal is approximated from the per-tier retransmit counters:
    /// any window with new retransmits reports ordinal 1, and a window
    /// where retransmits outnumber new drops (the same connections failing
    /// again) reports ordinal 2.
    pub fn tick(&mut self, chain: &Chain, counters: LiveCounters) -> Vec<Directive> {
        let now = self.clock.now();
        let n = chain.drops().len();
        let mut tiers = Vec::with_capacity(n);
        let mut drops_now: Vec<Vec<u64>> = Vec::with_capacity(n);
        for i in 0..n {
            let (depths, drops) = match (chain.replica_depths(i), chain.replica_drops(i)) {
                (Some(d), Some(dr)) => (d, dr),
                _ => (vec![chain.depths()[i]], vec![chain.drops()[i]]),
            };
            let prev = self.prev_drops.get(i).cloned().unwrap_or_default();
            let replicas = depths
                .iter()
                .zip(&drops)
                .enumerate()
                .map(|(r, (&depth, &d))| ReplicaObs {
                    depth,
                    draining: false,
                    retired: false,
                    drops_delta: d.saturating_sub(prev.get(r).copied().unwrap_or(0)),
                })
                .collect();
            tiers.push(TierObs {
                replicas,
                shed_delta: 0,
            });
            drops_now.push(drops);
        }
        let retransmits = chain.retransmits();
        let new_retrans: u64 = retransmits
            .iter()
            .zip(&self.prev_retransmits)
            .map(|(now, prev)| now.saturating_sub(*prev))
            .sum();
        let new_drops: u64 = tiers.iter().map(TierObs::drops_delta).sum();
        let max_retrans_ordinal = if new_retrans == 0 {
            0
        } else if new_retrans > new_drops {
            2
        } else {
            1
        };
        let obs = Observation {
            now,
            injected_delta: counters.injected.saturating_sub(self.prev.injected),
            completed_delta: counters.completed.saturating_sub(self.prev.completed),
            retries_delta: counters.retries.saturating_sub(self.prev.retries),
            hedges_delta: counters.hedges.saturating_sub(self.prev.hedges),
            max_retrans_ordinal,
            recent_p50: self.window.quantile(0.50),
            recent_p99: self.window.quantile(0.99),
            recent_hedge_q: self.hedge_q.and_then(|q| self.window.quantile(q)),
            tiers,
        };
        self.prev = counters;
        self.prev_drops = drops_now;
        self.prev_retransmits = retransmits;
        self.window.clear();
        self.ctl.tick(&obs, &mut self.rng)
    }

    /// The decision history so far.
    pub fn log(&self) -> &ControlLog {
        self.ctl.log()
    }

    /// Consumes the loop, yielding its decision history.
    pub fn into_log(self) -> ControlLog {
        self.ctl.into_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainBuilder, LiveTier};
    use crate::harness::fire_burst;
    use ntier_control::GovernorConfig;
    use ntier_des::time::{SimDuration, SimTime};
    use std::time::Duration;

    fn governor() -> ControlConfig {
        ControlConfig::every(SimDuration::from_millis(20)).with_governor(GovernorConfig {
            min_offered: 8,
            goodput_ratio: 0.5,
            ordinal_floor: 3, // live ordinal approximation caps at 2
            arm_after: 2,
            brake_tier: 0,
            brake_depth: 4,
            hold: SimDuration::from_millis(100),
            release_ratio: 0.9,
        })
    }

    #[test]
    fn quiet_chain_yields_no_directives() {
        let chain = ChainBuilder::new(Duration::from_millis(50))
            .tier(LiveTier::sync("web", 4, 4, Duration::from_micros(100)))
            .build()
            .expect("spawn chain");
        let mut lc = LiveController::new(governor(), &chain, 7);
        for _ in 0..5 {
            let dirs = lc.tick(&chain, LiveCounters::default());
            assert!(dirs.is_empty(), "idle windows are not storm evidence");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(lc.log().decisions.len(), 0);
        assert_eq!(lc.log().ticks, 5);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn goodput_collapse_brakes_and_recovery_releases() {
        // No chain traffic at all — the storm is synthesized through the
        // counters: offered work high, completions flat.
        let chain = ChainBuilder::new(Duration::from_millis(50))
            .tier(LiveTier::sync("web", 2, 2, Duration::from_micros(100)))
            .build()
            .expect("spawn chain");
        let mut lc = LiveController::new(governor(), &chain, 7);
        let mut c = LiveCounters::default();
        // Two consecutive collapse windows arm the governor.
        c.injected += 50;
        assert!(lc.tick(&chain, c).is_empty(), "first window is noise");
        c.injected += 50;
        let dirs = lc.tick(&chain, c);
        assert_eq!(
            dirs,
            vec![Directive::SetBrake {
                tier: 0,
                depth: Some(4)
            }]
        );
        // Recovery: goodput tracks offered again; hold must elapse on the
        // wall clock before release.
        std::thread::sleep(Duration::from_millis(120));
        c.injected += 50;
        c.completed += 50;
        let dirs = lc.tick(&chain, c);
        assert_eq!(
            dirs,
            vec![Directive::SetBrake {
                tier: 0,
                depth: None
            }]
        );
        assert_eq!(
            lc.log().summary(),
            "ticks=3 up=0 online=0 drain=0 retire=0 brake=1 release=1 hedge=0 aimd=0"
        );
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn burst_overflow_surfaces_drop_deltas() {
        // A burst far beyond MaxSysQDepth: the sampler must see the drop
        // delta at tier 0 on its next tick (counter plumbing end-to-end).
        let chain = ChainBuilder::new(Duration::from_millis(10))
            .tier(LiveTier::sync("web", 1, 1, Duration::from_millis(5)))
            .build()
            .expect("spawn chain");
        let mut lc = LiveController::new(governor(), &chain, 7);
        let outcome = fire_burst(chain.front(), 32, Duration::from_secs(5)).expect("burst");
        assert_eq!(outcome.completed, 32);
        let c = LiveCounters {
            injected: 32,
            completed: 32,
            ..Default::default()
        };
        lc.tick(&chain, c);
        assert!(
            chain.drops()[0] > 0,
            "burst should overflow the 1+1 queue at least once"
        );
        // The tick consumed the deltas: a second tick with no new traffic
        // must see none.
        let dirs = lc.tick(&chain, c);
        assert!(dirs.is_empty());
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn observed_latencies_retarget_the_hedge_delay() {
        use ntier_control::{Directive, HedgeTuner, TunerConfig};
        let cfg = ControlConfig::every(SimDuration::from_millis(20)).with_tuner(TunerConfig {
            hedge: Some(HedgeTuner {
                q: 0.95,
                floor: SimDuration::from_micros(50),
                cap: SimDuration::from_millis(10),
            }),
            aimd: None,
        });
        let chain = ChainBuilder::new(Duration::from_millis(50))
            .tier(LiveTier::sync("web", 4, 4, Duration::from_micros(100)))
            .build()
            .expect("spawn chain");
        let mut lc = LiveController::new(cfg, &chain, 7);
        // Sub-128 µs latencies land in the sketch's exact buckets, so the
        // tuner must read back precisely the observed q95.
        for _ in 0..100 {
            lc.observe_latency(Duration::from_micros(100));
        }
        let dirs = lc.tick(&chain, LiveCounters::default());
        assert_eq!(
            dirs,
            vec![Directive::SetHedgeDelay {
                delay: SimDuration::from_micros(100)
            }]
        );
        // The tick cleared the window: an empty window yields None
        // quantiles and the tuner holds rather than re-deciding.
        let dirs = lc.tick(&chain, LiveCounters::default());
        assert!(dirs.is_empty(), "empty window must not retune: {dirs:?}");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn live_and_simulated_controllers_agree_on_identical_observations() {
        // The decision path is the shared artifact: feed the same synthetic
        // observation stream to a bare Controller (as the engine does) and
        // through the live wrapper's counters — identical decision logs.
        let mut bare = Controller::new(governor());
        let mut bare_rng = SimRng::seed_from(7).fork("control");
        let storm = |ms: u64| Observation {
            now: SimTime::from_millis(ms),
            injected_delta: 50,
            completed_delta: 0,
            tiers: vec![TierObs {
                replicas: vec![ReplicaObs::default()],
                shed_delta: 0,
            }],
            ..Default::default()
        };
        let d1 = bare.tick(&storm(20), &mut bare_rng);
        let d2 = bare.tick(&storm(40), &mut bare_rng);
        assert!(d1.is_empty());
        assert_eq!(
            d2,
            vec![Directive::SetBrake {
                tier: 0,
                depth: Some(4)
            }]
        );
    }
}
