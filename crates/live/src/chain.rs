//! Chain construction: wiring tiers front-to-back.

use std::sync::Arc;
use std::time::Duration;

use ntier_trace::TraceSink;

use crate::stall::StallGate;
use crate::tier::{AsyncTier, SyncTier, Tier};
use crate::LiveError;

/// Declarative description of one tier.
#[derive(Debug, Clone)]
pub struct TierSpec {
    name: String,
    arch: Arch,
    workers: usize,
    service: Duration,
    gate: StallGate,
}

#[derive(Debug, Clone)]
enum Arch {
    Sync { backlog: usize },
    Async { lite_q: usize },
}

impl TierSpec {
    /// A synchronous tier: `workers` threads + `backlog` accept slots.
    pub fn sync(
        name: impl Into<String>,
        workers: usize,
        backlog: usize,
        service: Duration,
    ) -> Self {
        TierSpec {
            name: name.into(),
            arch: Arch::Sync { backlog },
            workers,
            service,
            gate: StallGate::new(),
        }
    }

    /// An asynchronous tier: `lite_q` accept slots + `workers` loop threads.
    pub fn asynchronous(
        name: impl Into<String>,
        lite_q: usize,
        workers: usize,
        service: Duration,
    ) -> Self {
        TierSpec {
            name: name.into(),
            arch: Arch::Async { lite_q },
            workers,
            service,
            gate: StallGate::new(),
        }
    }

    /// Uses an external stall gate (so the test can inject
    /// millibottlenecks into this tier).
    pub fn with_gate(mut self, gate: StallGate) -> Self {
        self.gate = gate;
        self
    }
}

enum Built {
    Sync(Arc<SyncTier>),
    Async(Arc<AsyncTier>),
}

impl Built {
    fn as_tier(&self) -> Arc<dyn Tier> {
        match self {
            Built::Sync(t) => t.clone(),
            Built::Async(t) => t.clone(),
        }
    }

    fn drops(&self) -> u64 {
        match self {
            Built::Sync(t) => t.drops(),
            Built::Async(t) => t.drops(),
        }
    }

    fn retransmits(&self) -> u64 {
        match self {
            Built::Sync(t) => t.retransmits(),
            Built::Async(t) => t.retransmits(),
        }
    }

    fn reaped(&self) -> u64 {
        match self {
            Built::Sync(t) => t.reaped(),
            Built::Async(t) => t.reaped(),
        }
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        match self {
            Built::Sync(t) => t.take_handles(),
            Built::Async(t) => t.take_handles(),
        }
    }
}

/// Builds a front-to-back chain of live tiers.
#[derive(Debug)]
pub struct ChainBuilder {
    specs: Vec<TierSpec>,
    rto: Duration,
    trace: Option<Arc<TraceSink>>,
}

impl ChainBuilder {
    /// Starts a chain whose drops retransmit after `rto`.
    pub fn new(rto: Duration) -> Self {
        ChainBuilder {
            specs: Vec::new(),
            rto,
            trace: None,
        }
    }

    /// Appends a tier (front first).
    pub fn tier(mut self, spec: TierSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Records every tier's enqueue/service/drop/reap events onto `sink`,
    /// stamped with the tier's front-first index — the live mirror of the
    /// simulator's per-request tracing. Pair with
    /// [`crate::harness::fire_burst_traced`] so client sends and terminals
    /// land in the same sink.
    pub fn trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Spawns every tier and wires them together.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::Spawn`] when a worker thread cannot be spawned;
    /// tiers already running wind down as their inputs are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no tiers were added.
    pub fn build(self) -> Result<Chain, LiveError> {
        assert!(!self.specs.is_empty(), "a chain needs at least one tier");
        let mut built: Vec<Built> = Vec::with_capacity(self.specs.len());
        let mut downstream: Option<Arc<dyn Tier>> = None;
        for (idx, spec) in self.specs.iter().enumerate().rev() {
            let trace = self.trace.as_ref().map(|s| (s.clone(), idx as u8));
            let b = match &spec.arch {
                Arch::Sync { backlog } => Built::Sync(SyncTier::spawn_traced(
                    spec.name.clone(),
                    spec.workers,
                    *backlog,
                    spec.service,
                    spec.gate.clone(),
                    downstream.take(),
                    self.rto,
                    trace,
                )?),
                Arch::Async { lite_q } => Built::Async(AsyncTier::spawn_traced(
                    spec.name.clone(),
                    *lite_q,
                    spec.workers,
                    spec.service,
                    spec.gate.clone(),
                    downstream.take(),
                    self.rto,
                    trace,
                )?),
            };
            downstream = Some(b.as_tier());
            built.push(b);
        }
        built.reverse(); // front first
        Ok(Chain { tiers: built })
    }
}

/// A running chain of live tiers.
pub struct Chain {
    tiers: Vec<Built>,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("tiers", &self.tiers.len())
            .finish()
    }
}

impl Chain {
    /// The front (client-facing) tier.
    pub fn front(&self) -> Arc<dyn Tier> {
        self.tiers[0].as_tier()
    }

    /// Per-tier drop counts, front first.
    pub fn drops(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::drops).collect()
    }

    /// Per-tier downstream retransmission counts, front first.
    pub fn retransmits(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::retransmits).collect()
    }

    /// Per-tier counts of cancelled attempts discarded at dequeue (or
    /// abandoned in retransmission limbo), front first — the live analogue
    /// of the simulator's `wasted_work_saved`.
    pub fn reaped(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::reaped).collect()
    }

    /// Per-tier names, front first.
    pub fn names(&self) -> Vec<String> {
        self.tiers
            .iter()
            .map(|t| t.as_tier().name().to_string())
            .collect()
    }

    /// Tears the chain down: closes accept queues front-to-back and joins
    /// every worker. Call after all client traffic has completed.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::WorkersPanicked`] naming the tiers whose worker
    /// threads panicked mid-run; the chain is fully torn down either way.
    pub fn shutdown(self) -> Result<(), LiveError> {
        // Dropping a tier's `Built` releases the only Sender of its input
        // channel; its workers drain and exit, which in turn releases their
        // Arc on the next tier — teardown cascades front to back.
        let mut handle_sets = Vec::new();
        for t in &self.tiers {
            handle_sets.push((t.as_tier().name().to_string(), t.take_handles()));
        }
        drop(self.tiers);
        let mut panicked: Vec<String> = Vec::new();
        for (name, handles) in handle_sets {
            let mut bad = false;
            for h in handles {
                bad |= h.join().is_err();
            }
            if bad {
                panicked.push(name);
            }
        }
        if panicked.is_empty() {
            Ok(())
        } else {
            Err(LiveError::WorkersPanicked(panicked))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::fire_burst;

    #[test]
    fn two_tier_sync_chain_round_trips() {
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(TierSpec::sync("web", 2, 4, Duration::from_micros(200)))
            .tier(TierSpec::sync("app", 2, 4, Duration::from_micros(200)))
            .build()
            .expect("spawn chain");
        assert_eq!(chain.names(), vec!["web", "app"]);
        let outcome = fire_burst(chain.front(), 6, Duration::from_secs(5)).expect("burst");
        assert_eq!(outcome.completed, 6);
        assert_eq!(chain.drops(), vec![0, 0]);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn shutdown_joins_cleanly_with_no_traffic() {
        let chain = ChainBuilder::new(Duration::from_millis(50))
            .tier(TierSpec::asynchronous(
                "a",
                16,
                1,
                Duration::from_micros(50),
            ))
            .tier(TierSpec::sync("b", 1, 1, Duration::from_micros(50)))
            .build()
            .expect("spawn chain");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_chain_rejected() {
        let _ = ChainBuilder::new(Duration::from_millis(50)).build();
    }
}
