//! Chain construction: wiring tiers front-to-back.
//!
//! The builder consumes the *simulator's* tier description —
//! [`ntier_core::TierSpec`] — so the DES engine and the live testbed share
//! one definition of a tier: architecture (sync thread pool vs. async
//! LiteQ), admission capacity, replica count and balancer policy all come
//! from the same struct. [`LiveTier`] adds the two things only a wall-clock
//! testbed needs: a real service [`Duration`] and [`StallGate`]s to inject
//! millibottlenecks with.

use std::sync::Arc;
use std::time::Duration;

use ntier_core::{TierKind, TierSpec};
use ntier_trace::TraceSink;

use crate::stall::StallGate;
use crate::tier::{AsyncTier, ReplicaSet, SyncTier, Tier};
use crate::LiveError;

/// One tier of a live chain: the shared [`TierSpec`] plus wall-clock
/// service time and stall gates.
///
/// When the spec says `replicas > 1` the builder spawns that many
/// independent instances — each with its own accept queue, workers and
/// stall gate — behind a [`ReplicaSet`] running the spec's [`Balancer`].
#[derive(Debug, Clone)]
pub struct LiveTier {
    spec: TierSpec,
    service: Duration,
    gate: StallGate,
    replica_gates: Vec<(usize, StallGate)>,
}

impl LiveTier {
    /// A live tier from the shared spec — the unified construction path.
    pub fn new(spec: TierSpec, service: Duration) -> Self {
        LiveTier {
            spec,
            service,
            gate: StallGate::new(),
            replica_gates: Vec::new(),
        }
    }

    /// Shorthand for a synchronous tier: `workers` threads + `backlog`
    /// accept slots.
    pub fn sync(
        name: impl Into<String>,
        workers: usize,
        backlog: usize,
        service: Duration,
    ) -> Self {
        LiveTier::new(TierSpec::sync(name, workers, backlog), service)
    }

    /// Shorthand for an asynchronous tier: `lite_q` accept slots +
    /// `workers` loop threads.
    pub fn asynchronous(
        name: impl Into<String>,
        lite_q: usize,
        workers: usize,
        service: Duration,
    ) -> Self {
        LiveTier::new(
            TierSpec::asynchronous(name, lite_q, workers as u32),
            service,
        )
    }

    /// Uses an external stall gate (so the test can inject
    /// millibottlenecks into this tier). Applies to every replica unless
    /// overridden per replica via [`LiveTier::with_replica_gate`].
    pub fn with_gate(mut self, gate: StallGate) -> Self {
        self.gate = gate;
        self
    }

    /// Gives one replica its own stall gate — the live mirror of the
    /// simulator's `TierSpec::with_replica_stalls`, for modelling a single
    /// sick instance behind an otherwise healthy set.
    pub fn with_replica_gate(mut self, replica: usize, gate: StallGate) -> Self {
        self.replica_gates.retain(|(r, _)| *r != replica);
        self.replica_gates.push((replica, gate));
        self
    }

    /// The shared spec this tier runs.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    fn gate_for(&self, replica: usize) -> StallGate {
        self.replica_gates
            .iter()
            .find(|(r, _)| *r == replica)
            .map(|(_, g)| g.clone())
            .unwrap_or_else(|| self.gate.clone())
    }
}

enum Built {
    Sync(Arc<SyncTier>),
    Async(Arc<AsyncTier>),
    Set {
        set: Arc<ReplicaSet>,
        members: Vec<Built>,
    },
}

impl Built {
    fn as_tier(&self) -> Arc<dyn Tier> {
        match self {
            Built::Sync(t) => t.clone(),
            Built::Async(t) => t.clone(),
            Built::Set { set, .. } => set.clone(),
        }
    }

    fn drops(&self) -> u64 {
        match self {
            Built::Sync(t) => t.drops(),
            Built::Async(t) => t.drops(),
            Built::Set { members, .. } => members.iter().map(Built::drops).sum(),
        }
    }

    fn retransmits(&self) -> u64 {
        match self {
            Built::Sync(t) => t.retransmits(),
            Built::Async(t) => t.retransmits(),
            Built::Set { members, .. } => members.iter().map(Built::retransmits).sum(),
        }
    }

    fn reaped(&self) -> u64 {
        match self {
            Built::Sync(t) => t.reaped(),
            Built::Async(t) => t.reaped(),
            Built::Set { members, .. } => members.iter().map(Built::reaped).sum(),
        }
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        match self {
            Built::Sync(t) => t.take_handles(),
            Built::Async(t) => t.take_handles(),
            Built::Set { members, .. } => members.iter().flat_map(Built::take_handles).collect(),
        }
    }
}

/// Builds a front-to-back chain of live tiers.
#[derive(Debug)]
pub struct ChainBuilder {
    tiers: Vec<LiveTier>,
    rto: Duration,
    trace: Option<Arc<TraceSink>>,
}

impl ChainBuilder {
    /// Starts a chain whose drops retransmit after `rto`.
    pub fn new(rto: Duration) -> Self {
        ChainBuilder {
            tiers: Vec::new(),
            rto,
            trace: None,
        }
    }

    /// Appends a tier (front first).
    pub fn tier(mut self, tier: LiveTier) -> Self {
        self.tiers.push(tier);
        self
    }

    /// Records every tier's enqueue/service/drop/reap events onto `sink`,
    /// stamped with the tier's front-first index and the replica the
    /// request landed on — the live mirror of the simulator's per-request
    /// tracing. Pair with [`crate::harness::fire_burst_traced`] so client
    /// sends and terminals land in the same sink.
    pub fn trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    fn spawn_instance(
        &self,
        tier: &LiveTier,
        idx: usize,
        replica: usize,
        name: String,
        downstream: Option<Arc<dyn Tier>>,
    ) -> Result<Built, LiveError> {
        let trace = self
            .trace
            .as_ref()
            .map(|s| (s.clone(), idx as u8, replica as u8));
        Ok(match &tier.spec.kind {
            TierKind::Sync {
                threads, backlog, ..
            } => Built::Sync(SyncTier::spawn_traced(
                name,
                *threads,
                *backlog,
                tier.service,
                tier.gate_for(replica),
                downstream,
                self.rto,
                trace,
            )?),
            TierKind::Async {
                lite_q_depth,
                workers,
            } => Built::Async(AsyncTier::spawn_traced(
                name,
                *lite_q_depth,
                *workers as usize,
                tier.service,
                tier.gate_for(replica),
                downstream,
                self.rto,
                trace,
            )?),
        })
    }

    /// Spawns every tier and wires them together.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::Spawn`] when a worker thread cannot be spawned;
    /// tiers already running wind down as their inputs are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no tiers were added.
    pub fn build(self) -> Result<Chain, LiveError> {
        assert!(!self.tiers.is_empty(), "a chain needs at least one tier");
        let mut built: Vec<Built> = Vec::with_capacity(self.tiers.len());
        let mut downstream: Option<Arc<dyn Tier>> = None;
        for (idx, tier) in self.tiers.iter().enumerate().rev() {
            let n = tier.spec.replicas.max(1);
            let b = if n == 1 {
                self.spawn_instance(tier, idx, 0, tier.spec.name.clone(), downstream.take())?
            } else {
                let shared_downstream = downstream.take();
                let mut members = Vec::with_capacity(n);
                for r in 0..n {
                    members.push(self.spawn_instance(
                        tier,
                        idx,
                        r,
                        format!("{}#{r}", tier.spec.name),
                        shared_downstream.clone(),
                    )?);
                }
                let set = Arc::new(ReplicaSet::new(
                    tier.spec.name.clone(),
                    members.iter().map(Built::as_tier).collect(),
                    tier.spec.balancer,
                ));
                Built::Set { set, members }
            };
            downstream = Some(b.as_tier());
            built.push(b);
        }
        built.reverse(); // front first
        Ok(Chain { tiers: built })
    }
}

/// A running chain of live tiers.
pub struct Chain {
    tiers: Vec<Built>,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("tiers", &self.tiers.len())
            .finish()
    }
}

impl Chain {
    /// The front (client-facing) tier.
    pub fn front(&self) -> Arc<dyn Tier> {
        self.tiers[0].as_tier()
    }

    /// Per-tier drop counts, front first (replica sets report the sum over
    /// their members; see [`Chain::replica_drops`] for the breakdown).
    pub fn drops(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::drops).collect()
    }

    /// Per-replica drop counts of tier `idx`, or `None` when that tier is a
    /// single instance.
    pub fn replica_drops(&self, idx: usize) -> Option<Vec<u64>> {
        match &self.tiers[idx] {
            Built::Set { members, .. } => Some(members.iter().map(Built::drops).collect()),
            _ => None,
        }
    }

    /// Per-tier instantaneous queue depths, front first (replica sets
    /// report the sum over their members; see [`Chain::replica_depths`]
    /// for the breakdown). This is the signal the control plane samples.
    pub fn depths(&self) -> Vec<usize> {
        self.tiers.iter().map(|t| t.as_tier().depth()).collect()
    }

    /// Per-replica instantaneous queue depths of tier `idx`, or `None` when
    /// that tier is a single instance.
    pub fn replica_depths(&self, idx: usize) -> Option<Vec<usize>> {
        match &self.tiers[idx] {
            Built::Set { members, .. } => {
                Some(members.iter().map(|m| m.as_tier().depth()).collect())
            }
            _ => None,
        }
    }

    /// Per-tier downstream retransmission counts, front first.
    pub fn retransmits(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::retransmits).collect()
    }

    /// Per-tier counts of cancelled attempts discarded at dequeue (or
    /// abandoned in retransmission limbo), front first — the live analogue
    /// of the simulator's `wasted_work_saved`.
    pub fn reaped(&self) -> Vec<u64> {
        self.tiers.iter().map(Built::reaped).collect()
    }

    /// Per-tier names, front first (a replica set reports its set name).
    pub fn names(&self) -> Vec<String> {
        self.tiers
            .iter()
            .map(|t| t.as_tier().name().to_string())
            .collect()
    }

    /// Tears the chain down: closes accept queues front-to-back and joins
    /// every worker. Call after all client traffic has completed.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::WorkersPanicked`] naming the tiers whose worker
    /// threads panicked mid-run; the chain is fully torn down either way.
    pub fn shutdown(self) -> Result<(), LiveError> {
        // Dropping a tier's `Built` releases the only Sender of its input
        // channel; its workers drain and exit, which in turn releases their
        // Arc on the next tier — teardown cascades front to back.
        let mut handle_sets = Vec::new();
        for t in &self.tiers {
            handle_sets.push((t.as_tier().name().to_string(), t.take_handles()));
        }
        drop(self.tiers);
        let mut panicked: Vec<String> = Vec::new();
        for (name, handles) in handle_sets {
            let mut bad = false;
            for h in handles {
                bad |= h.join().is_err();
            }
            if bad {
                panicked.push(name);
            }
        }
        if panicked.is_empty() {
            Ok(())
        } else {
            Err(LiveError::WorkersPanicked(panicked))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::fire_burst;
    use ntier_core::Balancer;

    #[test]
    fn two_tier_sync_chain_round_trips() {
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 2, 4, Duration::from_micros(200)))
            .tier(LiveTier::sync("app", 2, 4, Duration::from_micros(200)))
            .build()
            .expect("spawn chain");
        assert_eq!(chain.names(), vec!["web", "app"]);
        let outcome = fire_burst(chain.front(), 6, Duration::from_secs(5)).expect("burst");
        assert_eq!(outcome.completed, 6);
        assert_eq!(chain.drops(), vec![0, 0]);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn shutdown_joins_cleanly_with_no_traffic() {
        let chain = ChainBuilder::new(Duration::from_millis(50))
            .tier(LiveTier::asynchronous(
                "a",
                16,
                1,
                Duration::from_micros(50),
            ))
            .tier(LiveTier::sync("b", 1, 1, Duration::from_micros(50)))
            .build()
            .expect("spawn chain");
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    fn replicated_tier_serves_through_the_set() {
        // App tier: 2 replicas behind round-robin, built from the same
        // TierSpec the simulator would consume.
        let chain = ChainBuilder::new(Duration::from_millis(100))
            .tier(LiveTier::sync("web", 2, 8, Duration::from_micros(100)))
            .tier(LiveTier::new(
                TierSpec::sync("app", 1, 4)
                    .replicas(2)
                    .balancer(Balancer::RoundRobin),
                Duration::from_micros(100),
            ))
            .build()
            .expect("spawn chain");
        assert_eq!(chain.names(), vec!["web", "app"]);
        let outcome = fire_burst(chain.front(), 8, Duration::from_secs(5)).expect("burst");
        assert_eq!(outcome.completed, 8);
        assert_eq!(chain.replica_drops(1), Some(vec![0, 0]));
        assert_eq!(chain.replica_drops(0), None);
        chain.shutdown().expect("clean shutdown");
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_chain_rejected() {
        let _ = ChainBuilder::new(Duration::from_millis(50)).build();
    }
}
