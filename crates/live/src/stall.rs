//! Millibottleneck injection for real threads.
//!
//! A [`StallGate`] is a shared flag with a condvar: while raised, every
//! worker that reaches [`StallGate::wait_if_stalled`] blocks. Raising the
//! gate for 200 ms is the live equivalent of a 200 ms CPU millibottleneck —
//! the tier stops serving while its queues keep filling.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct Inner {
    stalled: Mutex<bool>,
    cv: Condvar,
}

/// A cloneable stall switch shared between an injector and tier workers.
#[derive(Debug, Clone, Default)]
pub struct StallGate {
    inner: Arc<Inner>,
}

impl StallGate {
    /// A new, open gate.
    pub fn new() -> Self {
        StallGate::default()
    }

    /// Blocks the calling worker while the gate is raised.
    pub fn wait_if_stalled(&self) {
        let mut stalled = self.inner.stalled.lock();
        while *stalled {
            self.inner.cv.wait(&mut stalled);
        }
    }

    /// `true` while the gate is raised.
    pub fn is_stalled(&self) -> bool {
        *self.inner.stalled.lock()
    }

    /// Raises the gate.
    pub fn begin(&self) {
        *self.inner.stalled.lock() = true;
    }

    /// Lowers the gate and releases all waiting workers.
    pub fn end(&self) {
        *self.inner.stalled.lock() = false;
        self.inner.cv.notify_all();
    }

    /// Raises the gate for `duration` on the calling thread (blocking).
    pub fn stall_for_blocking(&self, duration: Duration) {
        self.begin();
        std::thread::sleep(duration);
        self.end();
    }

    /// Spawns a timer thread that raises the gate `after` from now, for
    /// `duration`. Returns the timer's join handle.
    pub fn schedule_stall(
        &self,
        after: Duration,
        duration: Duration,
    ) -> std::thread::JoinHandle<()> {
        let gate = self.clone();
        std::thread::spawn(move || {
            std::thread::sleep(after);
            gate.stall_for_blocking(duration);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn open_gate_does_not_block() {
        let g = StallGate::new();
        let t0 = Instant::now();
        g.wait_if_stalled();
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert!(!g.is_stalled());
    }

    #[test]
    fn raised_gate_blocks_until_lowered() {
        let g = StallGate::new();
        g.begin();
        assert!(g.is_stalled());
        let g2 = g.clone();
        let released = Arc::new(AtomicBool::new(false));
        let released2 = released.clone();
        let h = std::thread::spawn(move || {
            g2.wait_if_stalled();
            released2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            !released.load(Ordering::SeqCst),
            "worker escaped a raised gate"
        );
        g.end();
        h.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn stall_for_blocking_holds_for_the_duration() {
        let g = StallGate::new();
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_millis(20)); // let the stall start
            g2.wait_if_stalled();
            t0.elapsed()
        });
        g.stall_for_blocking(Duration::from_millis(150));
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(140), "waited {waited:?}");
    }

    #[test]
    fn scheduled_stall_fires_later() {
        let g = StallGate::new();
        let timer = g.schedule_stall(Duration::from_millis(50), Duration::from_millis(100));
        assert!(!g.is_stalled());
        std::thread::sleep(Duration::from_millis(90));
        assert!(g.is_stalled());
        timer.join().unwrap();
        assert!(!g.is_stalled());
    }
}
