//! Live metrics exposition: a minimal Prometheus-text HTTP endpoint.
//!
//! The DES engine streams [`ntier_telemetry::MetricsSnapshot`]s to a JSONL
//! sink; the wall-clock mirror is a scrape endpoint. [`MetricsServer`]
//! binds a loopback TCP listener, serves the most recently
//! [`MetricsServer::publish`]ed exposition body at `GET /metrics`, and
//! shuts down cleanly on drop or [`MetricsServer::shutdown`].
//!
//! The server is deliberately tiny — a nonblocking accept loop on one
//! thread, no HTTP library, no keep-alive — because the testbed only needs
//! *a* scrapable surface, not a web framework. The exposition body is
//! whatever the caller renders; pair it with
//! [`ntier_telemetry::MetricsSnapshot::prometheus`] to expose the standard
//! metric families.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::LiveError;

/// A loopback HTTP server exposing the latest published metrics body.
///
/// # Example
///
/// ```
/// use ntier_live::metrics::MetricsServer;
///
/// let server = MetricsServer::bind().expect("bind loopback");
/// server.publish("ntier_up 1\n".to_string());
/// let addr = server.local_addr();
/// // ... point a scraper at http://{addr}/metrics ...
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds a fresh loopback listener on an OS-assigned port and starts
    /// the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::Spawn`] when the listener cannot be bound or
    /// the server thread cannot be spawned.
    pub fn bind() -> Result<Self, LiveError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(LiveError::Spawn)?;
        listener.set_nonblocking(true).map_err(LiveError::Spawn)?;
        let addr = listener.local_addr().map_err(LiveError::Spawn)?;
        let body = Arc::new(Mutex::new(String::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let body = Arc::clone(&body);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("metrics-http".into())
                .spawn(move || serve(&listener, &body, &stop))
                .map_err(LiveError::Spawn)?
        };
        Ok(MetricsServer {
            addr,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (always loopback; port OS-assigned).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the exposition body served at `/metrics`.
    pub fn publish(&self, exposition: String) {
        *self.body.lock().expect("metrics body lock") = exposition;
    }

    /// Stops the accept loop and joins the server thread. Idempotent; also
    /// runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: &TcpListener, body: &Mutex<String>, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, body),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(mut stream: TcpStream, body: &Mutex<String>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok();
    // Read the request head; path is all we route on.
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head.split_whitespace().nth(1).unwrap_or("/");
    let (status, content) = if path == "/metrics" {
        ("200 OK", body.lock().expect("metrics body lock").clone())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{content}",
        content.len()
    );
    stream.write_all(response.as_bytes()).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
            .expect("send request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_published_exposition_at_metrics() {
        let server = MetricsServer::bind().expect("bind");
        server.publish("ntier_up 1\n".to_string());
        let response = get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("ntier_up 1\n"), "{response}");
        // Re-publish replaces the body wholesale.
        server.publish("ntier_up 0\n".to_string());
        let response = get(server.local_addr(), "/metrics");
        assert!(response.contains("ntier_up 0\n"), "{response}");
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = MetricsServer::bind().expect("bind");
        let response = get(server.local_addr(), "/other");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_server_thread() {
        let server = MetricsServer::bind().expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh connect must fail (or be refused
        // immediately); either way no thread is left serving.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept briefly into a dead backlog; a read
                // then sees EOF rather than a response.
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok();
                s.set_read_timeout(Some(Duration::from_millis(200))).ok();
                let mut out = String::new();
                s.read_to_string(&mut out).is_err() || out.is_empty()
            }
        );
    }
}
