//! Wall-clock adapters for the `ntier-resilience` caller policies.
//!
//! The resilience primitives (`CircuitBreaker`, `TokenBucket`,
//! `RetryPolicy`) are written against simulated time so the DES engine can
//! drive them deterministically. The live testbed reuses the *same*
//! implementations — one behaviour, two clocks — by mapping wall-clock
//! [`Instant`]s onto a [`SimTime`] axis anchored at an epoch.

use std::time::{Duration, Instant};

use ntier_des::time::{SimDuration, SimTime};

/// A monotonic wall clock projected onto the simulated-time axis: `now()`
/// returns microseconds elapsed since the clock was created.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts the clock; `now()` is [`SimTime::ZERO`] at this instant.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// The current wall-clock time as a point on the simulated axis.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// A [`SimDuration`] as a wall-clock [`Duration`] (1 sim µs = 1 real µs).
pub fn wall(d: SimDuration) -> Duration {
    Duration::from_micros(d.as_micros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = c.now();
        assert!(b > a);
        assert!(b.saturating_since(a) >= SimDuration::from_millis(4));
    }

    #[test]
    fn wall_round_trips_microseconds() {
        assert_eq!(
            wall(SimDuration::from_millis(250)),
            Duration::from_millis(250)
        );
        assert_eq!(wall(SimDuration::ZERO), Duration::ZERO);
    }

    #[test]
    fn breaker_runs_on_the_wall_clock() {
        use ntier_resilience::{BreakerConfig, CircuitBreaker};
        let clock = WallClock::new();
        let mut br = CircuitBreaker::new(BreakerConfig::new(2, SimDuration::from_millis(20)));
        assert!(br.try_acquire(clock.now()));
        br.on_failure(clock.now());
        br.on_failure(clock.now());
        // Tripped: refused while the hold-open window lasts.
        assert!(!br.try_acquire(clock.now()));
        std::thread::sleep(Duration::from_millis(25));
        // Window elapsed on the real clock: half-open grants a probe.
        assert!(br.try_acquire(clock.now()));
        br.on_success(clock.now());
        assert!(br.try_acquire(clock.now()));
    }
}
