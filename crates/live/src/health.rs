//! Wall-clock mirror of the simulator's gray-failure detector.
//!
//! The DES engine feeds [`ntier_resilience::HealthDetector`] from its
//! step-synchronous reply/drop hooks and a `HealthTick` event; the live
//! testbed feeds the *same pure detector* from real time. One scoring
//! path, two clocks — the arrangement [`crate::control::LiveController`]
//! gives the control plane and `policy::WallClock` gives the resilience
//! policies.
//!
//! The live chain's replica sets do not expose a mutable eligibility mask
//! mid-run, so — like the structural directives of the live controller —
//! ejection verdicts are returned to the caller as *advice*: the harness
//! routes fresh work away from replicas for which [`LiveHealth::ejected`]
//! holds (trickling [`LiveHealth::probe_candidate`] picks through during
//! probation) and keeps draining whatever it already enqueued. Tests
//! assert on the decision stream, the part the simulator and testbed must
//! agree on.

use ntier_control::{Action, ControlLog};
use ntier_des::time::SimDuration;
use ntier_resilience::{HealthDetector, HealthPolicy, HealthVerdict};
use std::time::Duration;

use crate::policy::WallClock;

/// The wall-clock health loop: one [`HealthDetector`] fed passive signals
/// by the harness.
#[derive(Debug)]
pub struct LiveHealth {
    det: HealthDetector,
    clock: WallClock,
    log: ControlLog,
    tier: usize,
}

impl LiveHealth {
    /// Builds the detector over `replicas` instances of the monitored tier
    /// (`policy.tier` — kept for log labels; the live wrapper scores
    /// whichever replica set the harness feeds it).
    pub fn new(policy: HealthPolicy, replicas: usize) -> Self {
        let tier = policy.tier;
        LiveHealth {
            det: HealthDetector::new(policy, replicas),
            clock: WallClock::new(),
            log: ControlLog::default(),
            tier,
        }
    }

    /// Records a completed request against `replica` with its observed
    /// residence time (queue wait + service), the live analogue of the
    /// engine's visit-completion hook.
    pub fn on_reply(&mut self, replica: usize, residence: Duration) {
        let now = self.clock.now();
        self.det.on_reply(
            replica,
            now,
            SimDuration::from_micros(residence.as_micros() as u64),
        );
    }

    /// Records a rejected send (full backlog) against `replica`.
    pub fn on_drop(&mut self, replica: usize) {
        let now = self.clock.now();
        self.det.on_drop(replica, now);
    }

    /// One scoring pass over every replica. Call this every `policy.tick`
    /// of wall time (the pacing is the caller's, typically the harness's
    /// sampling thread). Verdicts are logged and returned as advice.
    pub fn tick(&mut self) -> Vec<HealthVerdict> {
        let now = self.clock.now();
        self.log.ticks += 1;
        let active = vec![true; self.det.replicas()];
        let verdicts = self.det.tick(now, &active);
        for v in &verdicts {
            match *v {
                HealthVerdict::Eject { replica, score, z } => self.log.push(
                    now,
                    Action::Ejected {
                        tier: self.tier,
                        replica,
                    },
                    format!("health score {score:.2} with peer z {z:.2}"),
                ),
                HealthVerdict::Reinstate { replica, score } => self.log.push(
                    now,
                    Action::Reinstated {
                        tier: self.tier,
                        replica,
                    },
                    format!("probation clean at score {score:.2}"),
                ),
            }
        }
        verdicts
    }

    /// Whether `replica` is currently benched (ejected or on probation):
    /// the harness should route fresh work elsewhere.
    pub fn ejected(&self, replica: usize) -> bool {
        self.det.ejected(replica)
    }

    /// A benched replica currently owed a trickle probe, if any.
    pub fn probe_candidate(&self) -> Option<usize> {
        self.det.probe_candidate()
    }

    /// Read access to the underlying pure detector (scores, phi).
    pub fn detector(&self) -> &HealthDetector {
        &self.det
    }

    /// The decision history so far.
    pub fn log(&self) -> &ControlLog {
        &self.log
    }

    /// Consumes the loop, yielding its decision history.
    pub fn into_log(self) -> ControlLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    /// A policy scaled to wall-clock test budgets: millisecond latencies,
    /// a 5 ms tick and a 30 ms probation.
    fn fast_policy() -> HealthPolicy {
        let mut p = HealthPolicy::monitor(1)
            .with_eject_score(0.6)
            .with_probation(SimDuration::from_millis(30));
        p.tick = SimDuration::from_millis(5);
        p.lat_ref = SimDuration::from_millis(10);
        p.warmup_replies = 4;
        p
    }

    #[test]
    fn healthy_replicas_yield_no_verdicts() {
        let mut h = LiveHealth::new(fast_policy(), 2);
        for _ in 0..8 {
            h.on_reply(0, Duration::from_millis(1));
            h.on_reply(1, Duration::from_millis(1));
        }
        assert!(h.tick().is_empty());
        assert_eq!(h.log().decisions.len(), 0);
        assert_eq!(h.log().ticks, 1);
    }

    #[test]
    fn sick_replica_is_ejected_probed_and_reinstated() {
        let mut h = LiveHealth::new(fast_policy(), 2);
        // Replica 0 answers at 3x the latency reference; replica 1 is fast.
        for _ in 0..8 {
            h.on_reply(0, Duration::from_millis(30));
            h.on_reply(1, Duration::from_millis(1));
        }
        let verdicts = h.tick();
        assert!(
            matches!(
                verdicts.as_slice(),
                [HealthVerdict::Eject { replica: 0, .. }]
            ),
            "{verdicts:?}"
        );
        assert!(h.ejected(0));
        assert!(!h.ejected(1));
        // Probation opens after the (wall-clock) probation delay; clean
        // probes then reinstate.
        sleep(Duration::from_millis(35));
        h.tick();
        assert_eq!(h.probe_candidate(), Some(0));
        // Enough clean probes for the 30 ms latency EWMA to decay under
        // the reinstatement hysteresis (0.5 * 0.6 * 10 ms = 3 ms). The
        // healthy peer keeps answering too, else its phi-accrual reads
        // the sleep as silence and ejects it.
        for _ in 0..12 {
            h.on_reply(0, Duration::from_millis(1));
            h.on_reply(1, Duration::from_millis(1));
        }
        let verdicts = h.tick();
        assert!(
            matches!(
                verdicts.as_slice(),
                [HealthVerdict::Reinstate { replica: 0, .. }]
            ),
            "{verdicts:?}"
        );
        assert!(!h.ejected(0));
        let log = h.into_log();
        assert_eq!(log.decisions.len(), 2);
        assert_eq!(log.decisions[0].action.label(), "eject(t1#0)");
        assert_eq!(log.decisions[1].action.label(), "reinstate(t1#0)");
    }

    #[test]
    fn last_healthy_replica_is_never_ejected() {
        let mut h = LiveHealth::new(fast_policy(), 2);
        for _ in 0..8 {
            h.on_reply(0, Duration::from_millis(30));
            h.on_reply(1, Duration::from_millis(1));
        }
        h.tick();
        assert!(h.ejected(0));
        // Now the survivor goes just as sick: the fraction guard holds it.
        for _ in 0..8 {
            h.on_reply(1, Duration::from_millis(30));
        }
        let verdicts = h.tick();
        assert!(verdicts.is_empty(), "{verdicts:?}");
        assert!(!h.ejected(1));
    }
}
