//! Fixed-window time series: the 50 ms aggregates the paper's figures plot.
//!
//! [`WindowedSeries`] covers counters (VLRT requests per window, drops per
//! window) and gauges (queue depths). [`UtilizationSeries`] accounts busy
//! time per window, producing CPU-utilization timelines.

use ntier_des::time::{SimDuration, SimTime};

/// Horizon past which [`WindowedSeries::reserve_through`] and
/// [`UtilizationSeries::paper_default_for`] stop preallocating: 10 minutes
/// of simulated time. Longer runs grow lazily (and long-horizon telemetry
/// should stream through [`crate::RingSeries`] instead) — O(horizon)
/// preallocation is exactly what capped runs at Fig.-1 scale.
pub const PREALLOC_HORIZON_CAP: SimDuration = SimDuration::from_secs(600);

/// Aggregates accumulated within one window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowAgg {
    /// Sum of recorded values (for counters: the windowed total).
    pub sum: f64,
    /// Number of recordings.
    pub count: u64,
    /// Maximum recorded value (0 when the window is empty).
    pub max: f64,
    /// Last recorded value (0 when the window is empty).
    pub last: f64,
}

impl WindowAgg {
    /// Mean of recorded values, or 0 for an empty window.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A time series aggregated into fixed windows (default 50 ms).
///
/// Recordings are indexed by simulated time; the series grows on demand, and
/// unobserved windows read as empty aggregates.
///
/// # Example
///
/// ```
/// use ntier_des::prelude::*;
/// use ntier_telemetry::series::WindowedSeries;
///
/// let mut vlrt = WindowedSeries::with_window(SimDuration::from_millis(50));
/// vlrt.add(SimTime::from_millis(120), 1.0); // one VLRT request in window 2
/// vlrt.add(SimTime::from_millis(130), 1.0);
/// assert_eq!(vlrt.window(2).sum, 2.0);
/// assert_eq!(vlrt.window(0).sum, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: SimDuration,
    windows: Vec<WindowAgg>,
}

impl WindowedSeries {
    /// Creates a series with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        WindowedSeries {
            window,
            windows: Vec::new(),
        }
    }

    /// Creates a series with the paper's 50 ms monitoring window.
    pub fn paper_default() -> Self {
        WindowedSeries::with_window(SimDuration::from_millis(crate::MONITOR_WINDOW_MS))
    }

    /// Like [`WindowedSeries::paper_default`], but with backing storage
    /// reserved for a run of length `horizon` so the hot path never
    /// reallocates. Only capacity is reserved: `len()` still reports the
    /// windows actually touched, so reads are unchanged.
    pub fn paper_default_for(horizon: SimDuration) -> Self {
        let mut s = WindowedSeries::paper_default();
        s.reserve_through(horizon);
        s
    }

    /// Reserves capacity for every window up to `horizon` (plus one spill
    /// window for events that land exactly at the horizon), capped at
    /// [`PREALLOC_HORIZON_CAP`]: past the cap only the first 10 minutes'
    /// worth is reserved and later windows grow lazily.
    pub fn reserve_through(&mut self, horizon: SimDuration) {
        let want = (horizon.as_micros() / self.window.as_micros()) as usize + 2;
        let cap = (PREALLOC_HORIZON_CAP.as_micros() / self.window.as_micros()) as usize + 2;
        if want > cap {
            // Pre-cap behavior reserved O(horizon) here — 1.7 GB of windows
            // for a simulated day at 50 ms. Trip in debug builds so the
            // fallback is visible, not silent.
            debug_assert!(
                horizon > PREALLOC_HORIZON_CAP,
                "cap binds only past the preallocation horizon"
            );
        }
        let n = want.min(cap);
        self.windows.reserve(n.saturating_sub(self.windows.len()));
    }

    /// The window size.
    pub fn window_size(&self) -> SimDuration {
        self.window
    }

    /// Adds `value` to the window containing `t` (counter semantics: values
    /// accumulate in `sum`).
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = t.window_index(self.window) as usize;
        self.ensure(idx);
        let w = &mut self.windows[idx];
        w.sum += value;
        w.count += 1;
        if value > w.max {
            w.max = value;
        }
        w.last = value;
    }

    /// Records a gauge observation at `t` (use [`WindowAgg::max`] /
    /// [`WindowAgg::mean`] when reading).
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.add(t, value);
    }

    /// The aggregate for window `idx` (empty default if never touched).
    pub fn window(&self, idx: usize) -> WindowAgg {
        self.windows.get(idx).copied().unwrap_or_default()
    }

    /// Number of windows from time zero through the last touched window.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` if no window was ever touched.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterates `(window_start_time, aggregate)` over all windows.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, WindowAgg)> + '_ {
        let w = self.window;
        self.windows
            .iter()
            .enumerate()
            .map(move |(i, agg)| (SimTime::from_micros(i as u64 * w.as_micros()), *agg))
    }

    /// The per-window sums as a plain vector (counter reading).
    pub fn sums(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.sum).collect()
    }

    /// The per-window maxima as a plain vector (gauge reading).
    pub fn maxima(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.max).collect()
    }

    /// Total of all window sums.
    pub fn total(&self) -> f64 {
        self.windows.iter().map(|w| w.sum).sum()
    }

    /// The largest window sum together with its window start time.
    pub fn peak(&self) -> Option<(SimTime, f64)> {
        let w = self.window;
        self.windows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.sum.partial_cmp(&b.1.sum).expect("sums are finite"))
            .map(|(i, agg)| (SimTime::from_micros(i as u64 * w.as_micros()), agg.sum))
    }

    /// Folds `other` into `self` window-by-window: sums and counts add, maxima
    /// take the larger value. Used to pool per-replica series into one
    /// tier-level view; both series must share a window size.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn absorb(&mut self, other: &WindowedSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot absorb series with a different window size"
        );
        if other.windows.is_empty() {
            return;
        }
        self.ensure(other.windows.len() - 1);
        for (w, o) in self.windows.iter_mut().zip(other.windows.iter()) {
            w.sum += o.sum;
            w.count += o.count;
            if o.max > w.max {
                w.max = o.max;
            }
            if o.count > 0 {
                w.last = o.last;
            }
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowAgg::default());
        }
    }

    /// Pools partitions of one logical series — per-shard slices of a
    /// sharded run, or per-replica views of a tier — into a single series:
    /// the window-wise [`absorb`](Self::absorb) fold over every partition,
    /// in iteration order (pass shards in shard-id order so the `last`
    /// sample resolves deterministically). Returns `None` for an empty
    /// iterator.
    ///
    /// # Panics
    ///
    /// Panics if the partitions disagree on window size.
    pub fn merged<'a, I>(parts: I) -> Option<WindowedSeries>
    where
        I: IntoIterator<Item = &'a WindowedSeries>,
    {
        let mut it = parts.into_iter();
        let mut acc = it.next()?.clone();
        for p in it {
            acc.absorb(p);
        }
        Some(acc)
    }
}

/// Busy-time accounting per window, yielding utilization timelines.
///
/// Busy intervals may span window boundaries; the busy time is split across
/// the overlapped windows, so utilization is exact rather than sampled.
///
/// # Example
///
/// ```
/// use ntier_des::prelude::*;
/// use ntier_telemetry::series::UtilizationSeries;
///
/// let mut cpu = UtilizationSeries::with_window(SimDuration::from_millis(50), 1);
/// // busy from 25 ms to 75 ms: half of window 0 and half of window 1
/// cpu.record_busy(SimTime::from_millis(25), SimTime::from_millis(75));
/// assert!((cpu.utilization(0) - 0.5).abs() < 1e-9);
/// assert!((cpu.utilization(1) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationSeries {
    window: SimDuration,
    cores: u32,
    busy_micros: Vec<u64>,
}

impl UtilizationSeries {
    /// Creates a utilization series for `cores` cores with the given window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `cores` is zero.
    pub fn with_window(window: SimDuration, cores: u32) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        assert!(cores > 0, "cores must be non-zero");
        UtilizationSeries {
            window,
            cores,
            busy_micros: Vec::new(),
        }
    }

    /// Creates a series with the paper's 50 ms window.
    pub fn paper_default(cores: u32) -> Self {
        UtilizationSeries::with_window(SimDuration::from_millis(crate::MONITOR_WINDOW_MS), cores)
    }

    /// Like [`UtilizationSeries::paper_default`], but with busy-time storage
    /// reserved for a run of length `horizon` (capacity only — observable
    /// state is identical to the on-demand series). Reservation is capped
    /// at [`PREALLOC_HORIZON_CAP`], like
    /// [`WindowedSeries::reserve_through`].
    pub fn paper_default_for(cores: u32, horizon: SimDuration) -> Self {
        let mut s = UtilizationSeries::paper_default(cores);
        let want = (horizon.as_micros() / s.window.as_micros()) as usize + 2;
        let cap = (PREALLOC_HORIZON_CAP.as_micros() / s.window.as_micros()) as usize + 2;
        if want > cap {
            debug_assert!(
                horizon > PREALLOC_HORIZON_CAP,
                "cap binds only past the preallocation horizon"
            );
        }
        s.busy_micros.reserve(want.min(cap));
        s
    }

    /// Total busy time recorded across all windows, in microseconds — the
    /// integer numerator behind the metrics plane's `util_ppm` gauges.
    pub fn total_busy_micros(&self) -> u64 {
        self.busy_micros.iter().sum()
    }

    /// Accounts one core as busy over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime) {
        assert!(end >= start, "busy interval must be well-ordered");
        if end == start {
            return;
        }
        let wsize = self.window.as_micros();
        let mut cursor = start.as_micros();
        let end_us = end.as_micros();
        while cursor < end_us {
            let idx = (cursor / wsize) as usize;
            let window_end = (idx as u64 + 1) * wsize;
            let slice_end = window_end.min(end_us);
            self.ensure(idx);
            self.busy_micros[idx] += slice_end - cursor;
            cursor = slice_end;
        }
    }

    /// Utilization of window `idx` in `[0, 1]` (0 if never touched).
    pub fn utilization(&self, idx: usize) -> f64 {
        let busy = self.busy_micros.get(idx).copied().unwrap_or(0);
        busy as f64 / (self.window.as_micros() as f64 * f64::from(self.cores))
    }

    /// Utilizations for all windows through the last touched one.
    pub fn utilizations(&self) -> Vec<f64> {
        (0..self.busy_micros.len())
            .map(|i| self.utilization(i))
            .collect()
    }

    /// Mean utilization over windows `[0, through_window]` (inclusive),
    /// counting untouched windows as idle.
    pub fn mean_utilization(&self, through_window: usize) -> f64 {
        if through_window == usize::MAX {
            return 0.0;
        }
        let n = through_window + 1;
        let busy: u64 = (0..n)
            .map(|i| self.busy_micros.get(i).copied().unwrap_or(0))
            .sum();
        busy as f64 / (self.window.as_micros() as f64 * f64::from(self.cores) * n as f64)
    }

    /// Pools `other` into `self`: busy time and core counts add, so the
    /// combined series reads as the utilization of the whole replica set
    /// (total busy over total capacity). Window sizes must match.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn absorb(&mut self, other: &UtilizationSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot absorb series with a different window size"
        );
        self.cores += other.cores;
        if other.busy_micros.len() > self.busy_micros.len() {
            self.busy_micros.resize(other.busy_micros.len(), 0);
        }
        for (b, o) in self.busy_micros.iter_mut().zip(other.busy_micros.iter()) {
            *b += o;
        }
    }

    /// Number of windows touched.
    pub fn len(&self) -> usize {
        self.busy_micros.len()
    }

    /// `true` if no busy time was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.busy_micros.is_empty()
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.busy_micros.len() {
            self.busy_micros.resize(idx + 1, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn counter_accumulates_per_window() {
        let mut s = WindowedSeries::paper_default();
        s.add(ms(10), 1.0);
        s.add(ms(40), 1.0);
        s.add(ms(51), 1.0);
        assert_eq!(s.window(0).sum, 2.0);
        assert_eq!(s.window(1).sum, 1.0);
        assert_eq!(s.total(), 3.0);
    }

    #[test]
    fn gauge_tracks_max_and_mean() {
        let mut s = WindowedSeries::paper_default();
        s.record(ms(0), 100.0);
        s.record(ms(10), 300.0);
        s.record(ms(20), 200.0);
        let w = s.window(0);
        assert_eq!(w.max, 300.0);
        assert_eq!(w.mean(), 200.0);
        assert_eq!(w.last, 200.0);
    }

    #[test]
    fn untouched_windows_read_empty() {
        let s = WindowedSeries::paper_default();
        assert_eq!(s.window(17), WindowAgg::default());
        assert!(s.is_empty());
        assert_eq!(s.peak(), None);
    }

    #[test]
    fn peak_finds_largest_window() {
        let mut s = WindowedSeries::paper_default();
        s.add(ms(10), 2.0);
        s.add(ms(260), 5.0);
        s.add(ms(400), 1.0);
        let (t, v) = s.peak().unwrap();
        assert_eq!(t, ms(250));
        assert_eq!(v, 5.0);
    }

    #[test]
    fn iter_yields_window_starts() {
        let mut s = WindowedSeries::with_window(SimDuration::from_millis(100));
        s.add(ms(150), 1.0);
        let points: Vec<_> = s.iter().collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, ms(0));
        assert_eq!(points[1].0, ms(100));
        assert_eq!(points[1].1.sum, 1.0);
    }

    #[test]
    fn merged_pools_shard_partitions() {
        // Three shards each hold a slice of one logical drop series; the
        // merge must equal the series a single-shard run would have built.
        let mut whole = WindowedSeries::paper_default();
        let mut parts: Vec<WindowedSeries> =
            (0..3).map(|_| WindowedSeries::paper_default()).collect();
        for (i, t) in [5u64, 60, 110, 140, 260, 300].iter().enumerate() {
            whole.add(ms(*t), 1.0);
            parts[i % 3].add(ms(*t), 1.0);
        }
        let merged = WindowedSeries::merged(parts.iter()).expect("non-empty");
        assert_eq!(merged.sums(), whole.sums());
        assert_eq!(merged.total(), whole.total());
        assert!(WindowedSeries::merged(std::iter::empty()).is_none());
    }

    #[test]
    fn preallocation_is_capped_past_ten_minutes() {
        let day = SimDuration::from_secs(24 * 3_600);
        let capped = (PREALLOC_HORIZON_CAP.as_micros()
            / SimDuration::from_millis(crate::MONITOR_WINDOW_MS).as_micros())
            as usize
            + 2;
        let s = WindowedSeries::paper_default_for(day);
        assert!(
            s.windows.capacity() <= 2 * capped,
            "capacity {}",
            s.windows.capacity()
        );
        let u = UtilizationSeries::paper_default_for(2, day);
        assert!(u.busy_micros.capacity() <= 2 * capped);
        // short horizons still get their exact reservation
        let short = WindowedSeries::paper_default_for(SimDuration::from_secs(20));
        assert!(short.windows.capacity() >= 400);
    }

    #[test]
    fn total_busy_micros_sums_windows() {
        let mut u = UtilizationSeries::paper_default(1);
        u.record_busy(ms(25), ms(75));
        u.record_busy(ms(100), ms(110));
        assert_eq!(u.total_busy_micros(), 60_000);
    }

    #[test]
    fn utilization_splits_across_windows() {
        let mut u = UtilizationSeries::paper_default(1);
        u.record_busy(ms(25), ms(75));
        assert!((u.utilization(0) - 0.5).abs() < 1e-12);
        assert!((u.utilization(1) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilization(2), 0.0);
    }

    #[test]
    fn utilization_with_multiple_cores_scales() {
        let mut u = UtilizationSeries::paper_default(4);
        // one core fully busy for one window => 25% of a 4-core node
        u.record_busy(ms(0), ms(50));
        assert!((u.utilization(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_utilization_counts_idle_windows() {
        let mut u = UtilizationSeries::paper_default(1);
        u.record_busy(ms(0), ms(50));
        // windows 0..=3: one fully busy, three idle
        assert!((u.mean_utilization(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_busy_interval_is_noop() {
        let mut u = UtilizationSeries::paper_default(1);
        u.record_busy(ms(10), ms(10));
        assert!(u.is_empty());
    }

    #[test]
    #[should_panic(expected = "well-ordered")]
    fn reversed_busy_interval_panics() {
        let mut u = UtilizationSeries::paper_default(1);
        u.record_busy(ms(20), ms(10));
    }

    proptest! {
        /// Total busy time recorded equals total busy time read back,
        /// regardless of how intervals straddle windows.
        #[test]
        fn busy_time_is_conserved(intervals in proptest::collection::vec((0u64..5_000, 0u64..500), 1..50)) {
            let mut u = UtilizationSeries::paper_default(1);
            let mut expect = 0u64;
            for (start, len) in intervals {
                u.record_busy(SimTime::from_micros(start), SimTime::from_micros(start + len));
                expect += len;
            }
            let w = SimDuration::from_millis(crate::MONITOR_WINDOW_MS).as_micros() as f64;
            let got: f64 = u.utilizations().iter().map(|x| x * w).sum();
            prop_assert!((got - expect as f64).abs() < 1e-6);
        }

        /// Counter totals equal the sum of inserted values.
        #[test]
        fn counter_total_is_conserved(values in proptest::collection::vec((0u64..10_000, 0.0f64..10.0), 1..100)) {
            let mut s = WindowedSeries::paper_default();
            let mut expect = 0.0;
            for (t, v) in &values {
                s.add(SimTime::from_millis(*t), *v);
                expect += v;
            }
            prop_assert!((s.total() - expect).abs() < 1e-9);
        }
    }
}
