//! Small summary-statistics helpers shared by reports and tests.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// The `q`-quantile (nearest-rank) of `values`; `None` when empty.
///
/// `q` is clamped to `[0, 1]`. The input need not be sorted.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Maximum of a slice; `None` when empty.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"))
}

/// Index of dispersion of counts (variance / mean) — the burstiness measure
/// behind the paper's "burst index" knob ([Mi et al., ICAC'09]).
///
/// Returns 0 when the series is empty or has zero mean.
pub fn index_of_dispersion(counts: &[f64]) -> f64 {
    let m = mean(counts);
    if m == 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / counts.len().max(1) as f64;
    var / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_does_not_require_sorted_input() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.34), Some(3.0));
    }

    #[test]
    fn dispersion_of_poisson_like_counts_is_near_one() {
        // counts with variance == mean
        let v = [2.0, 4.0, 2.0, 4.0];
        // mean 3, var 1 => IoD = 1/3; just check the formula
        assert!((index_of_dispersion(&v) - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(index_of_dispersion(&[]), 0.0);
        assert_eq!(index_of_dispersion(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn dispersion_grows_with_burstiness() {
        let steady = [10.0; 20];
        let mut bursty = [0.0; 20];
        bursty[0] = 200.0;
        assert!(index_of_dispersion(&bursty) > index_of_dispersion(&steady));
    }

    proptest! {
        #[test]
        fn quantile_is_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let a = quantile(&values, 0.25).unwrap();
            let b = quantile(&values, 0.75).unwrap();
            prop_assert!(b >= a);
        }

        #[test]
        fn quantile_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..=1.0) {
            let v = quantile(&values, q).unwrap();
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
