//! Small summary-statistics helpers shared by reports and tests.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// The `q`-quantile (nearest-rank) of `values`; `None` when empty.
///
/// `q` is clamped to `[0, 1]`. The input need not be sorted.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Maximum of a slice; `None` when empty.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"))
}

/// An exponentially weighted moving average with smoothing factor `alpha`.
///
/// The first observation seeds the average directly (no zero bias). Plain
/// data, like everything in this crate: callers decide what an observation
/// means and when to sample the value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new average with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1]"
        );
        Ewma { alpha, value: None }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current average, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// `true` once at least one observation has been folded in.
    pub fn is_seeded(&self) -> bool {
        self.value.is_some()
    }
}

/// Upper tail `P(X > x)` of a normal distribution with the given `mean` and
/// standard deviation, via a rational complementary-error-function
/// approximation (fractional error everywhere below ~1.2e-7).
///
/// `std` is floored at a tiny positive value, so a degenerate distribution
/// yields a step function rather than NaN. This is the tail the phi-accrual
/// failure detector turns into a suspicion level: `phi = -log10(P(gap > t))`.
pub fn normal_tail(x: f64, mean: f64, std: f64) -> f64 {
    let std = std.max(1e-9);
    let z = (x - mean) / (std * std::f64::consts::SQRT_2);
    0.5 * erfc(z)
}

/// Complementary error function (Chebyshev-fitted rational approximation).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        poly
    } else {
        2.0 - poly
    }
}

/// Index of dispersion of counts (variance / mean) — the burstiness measure
/// behind the paper's "burst index" knob ([Mi et al., ICAC'09]).
///
/// Returns 0 when the series is empty or has zero mean.
pub fn index_of_dispersion(counts: &[f64]) -> f64 {
    let m = mean(counts);
    if m == 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / counts.len().max(1) as f64;
    var / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_does_not_require_sorted_input() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.34), Some(3.0));
    }

    #[test]
    fn dispersion_of_poisson_like_counts_is_near_one() {
        // counts with variance == mean
        let v = [2.0, 4.0, 2.0, 4.0];
        // mean 3, var 1 => IoD = 1/3; just check the formula
        assert!((index_of_dispersion(&v) - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(index_of_dispersion(&[]), 0.0);
        assert_eq!(index_of_dispersion(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn ewma_seeds_on_first_observation_and_tracks() {
        let mut e = Ewma::new(0.5);
        assert!(!e.is_seeded());
        assert_eq!(e.value_or(7.0), 7.0);
        e.observe(10.0);
        assert_eq!(e.value_or(0.0), 10.0);
        e.observe(20.0);
        assert_eq!(e.value_or(0.0), 15.0);
        assert!(e.is_seeded());
    }

    #[test]
    #[should_panic(expected = "smoothing factor must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn normal_tail_matches_known_points() {
        // P(X > mean) = 0.5; one-sigma upper tail ≈ 0.1587.
        assert!((normal_tail(0.0, 0.0, 1.0) - 0.5).abs() < 1e-6);
        assert!((normal_tail(1.0, 0.0, 1.0) - 0.158_655).abs() < 1e-4);
        assert!((normal_tail(-1.0, 0.0, 1.0) - 0.841_345).abs() < 1e-4);
        // Degenerate std behaves like a step, not NaN.
        assert!(normal_tail(1.0, 0.0, 0.0) < 1e-12);
        assert!(normal_tail(-1.0, 0.0, 0.0) > 1.0 - 1e-12);
    }

    #[test]
    fn normal_tail_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in -40..=40 {
            let t = normal_tail(i as f64 / 10.0, 0.0, 1.0);
            assert!(t <= prev + 1e-12, "tail not monotone at {i}");
            prev = t;
        }
    }

    #[test]
    fn dispersion_grows_with_burstiness() {
        let steady = [10.0; 20];
        let mut bursty = [0.0; 20];
        bursty[0] = 200.0;
        assert!(index_of_dispersion(&bursty) > index_of_dispersion(&steady));
    }

    proptest! {
        #[test]
        fn quantile_is_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let a = quantile(&values, 0.25).unwrap();
            let b = quantile(&values, 0.75).unwrap();
            prop_assert!(b >= a);
        }

        #[test]
        fn quantile_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..=1.0) {
            let v = quantile(&values, q).unwrap();
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
