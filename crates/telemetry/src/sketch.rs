//! A deterministic, mergeable quantile sketch for latency streams.
//!
//! The paper's monitoring method needs latency quantiles continuously —
//! per control tick, per metrics snapshot, per shard — and the full
//! [`crate::LatencyHistogram`] answers that only at its 50 ms bucket
//! resolution while costing O(range) storage. [`QuantileSketch`] is the
//! streaming replacement: DDSketch-style log-linear buckets over integer
//! microseconds, a guaranteed relative-error bound, and a `merge` that is
//! plain counter addition — associative, commutative, and therefore
//! shard-order-stable, which is what keeps sharded runs bit-identical.
//!
//! # Bucketing
//!
//! Values are `u64` microseconds. Small values are exact: `v < 128` maps to
//! bucket key `v`. Larger values use log-linear keys: with
//! `e = 63 - v.leading_zeros()` (the octave) and 128 sub-buckets per octave,
//!
//! ```text
//! key(v) = (e << 7) | ((v >> (e - 7)) & 127)        for v >= 128
//! ```
//!
//! Each bucket spans `w = 2^(e-7)` consecutive integers starting at
//! `lower = (128 + sub) << (e - 7)`; the reported representative is the
//! midpoint `lower + w/2`. Since `lower >= 128·w`, the error is at most
//! `w/2 / (128·w) = 1/256` of the true value — the documented ≤ 0.4 %
//! relative-error bound ([`QuantileSketch::RELATIVE_ERROR`]). Keys are
//! monotone in value, so a cumulative scan in key order walks samples in
//! nondecreasing order, exactly like a sorted array.
//!
//! All arithmetic is integer-only: no floating-point accumulation, no
//! platform-dependent rounding, hence bit-identical snapshots everywhere.

use ntier_des::time::SimDuration;

/// Sub-bucket bits per octave: 2^7 = 128 log-linear sub-buckets.
const SUB_BITS: u32 = 7;
/// Values below this are stored exactly (one key per integer microsecond).
const EXACT_LIMIT: u64 = 1 << SUB_BITS;
/// Largest possible key: octave 63, sub-bucket 127.
const MAX_KEY: usize = (63 << SUB_BITS) | (EXACT_LIMIT as usize - 1);

/// A mergeable log-linear quantile sketch over latency samples.
///
/// # Example
///
/// ```
/// use ntier_des::prelude::*;
/// use ntier_telemetry::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for ms in [2u64, 2, 2, 3_004] {
///     s.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(s.total(), 4);
/// let p50 = s.quantile(0.5).unwrap();
/// assert!((p50.as_micros() as f64 - 2_000.0).abs() <= 2_000.0 / 256.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Dense per-key counts, grown on demand up to `MAX_KEY + 1`.
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
}

impl QuantileSketch {
    /// Guaranteed bound on `|reported - true| / true` for any quantile:
    /// half a sub-bucket over the bucket's lower edge, `1/256 ≈ 0.4 %`.
    pub const RELATIVE_ERROR: f64 = 1.0 / 256.0;

    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    fn key(v: u64) -> usize {
        if v < EXACT_LIMIT {
            v as usize
        } else {
            let e = 63 - v.leading_zeros();
            ((e << SUB_BITS) | ((v >> (e - SUB_BITS)) as u32 & (EXACT_LIMIT as u32 - 1))) as usize
        }
    }

    /// Midpoint representative of bucket `key` (exact for `key < 128`).
    fn representative(key: usize) -> u64 {
        if key < EXACT_LIMIT as usize {
            key as u64
        } else {
            let e = (key >> SUB_BITS) as u32;
            let sub = (key as u64) & (EXACT_LIMIT - 1);
            let width = 1u64 << (e - SUB_BITS);
            ((EXACT_LIMIT + sub) << (e - SUB_BITS)) + width / 2
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.record_micros(latency.as_micros());
    }

    /// Records one raw microsecond value (the live testbed's wall-clock
    /// path, which has no [`SimDuration`]s).
    pub fn record_micros(&mut self, micros: u64) {
        let k = Self::key(micros);
        if k >= self.counts.len() {
            self.counts.resize((k + 1).min(MAX_KEY + 1), 0);
        }
        self.counts[k] += 1;
        self.total += 1;
        self.sum_micros += u128::from(micros);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all samples; zero when empty. Exact (the sum is kept aside).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_micros / u128::from(self.total)) as u64)
        }
    }

    /// Number of samples in buckets wholly at or above `threshold` — the
    /// VLRT count when called with 3 s. Buckets are ≤ 0.8 % wide, so only
    /// samples within one bucket of the threshold can be misattributed.
    pub fn count_above(&self, threshold: SimDuration) -> u64 {
        let first = Self::key(threshold.as_micros());
        self.counts.iter().skip(first).sum()
    }

    /// The quantile `q` in `[0, 1]` via the same nearest-rank rule as
    /// [`crate::LatencyHistogram::quantile`]: the representative of the
    /// bucket holding the `ceil(q·total)`-th smallest sample, within
    /// [`QuantileSketch::RELATIVE_ERROR`] of the exact order statistic.
    ///
    /// Returns `None` when the sketch is empty: an unpopulated window has
    /// no quantile, and callers adapting policies (hedge delay, AIMD
    /// bounds) must hold rather than act on garbage.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(SimDuration::from_micros(Self::representative(k)));
            }
        }
        unreachable!("cumulative count reaches total")
    }

    /// Folds `other` into `self` by bucket-wise counter addition. Merging
    /// is associative and commutative, so pooling per-shard sketches gives
    /// the same bytes in any order — the property the sharded-run
    /// bit-identity tests pin.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
    }

    /// Resets the sketch to empty, keeping its allocation — the per-tick
    /// recent-window reset on the control path.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum_micros = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..128u64 {
            s.record(us(v));
        }
        assert_eq!(s.quantile(0.0).unwrap(), us(0));
        // rank rule: ceil(0.5 * 128) = 64 → the 64th smallest = 63
        assert_eq!(s.quantile(0.5).unwrap(), us(63));
        assert_eq!(s.quantile(1.0).unwrap(), us(127));
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut s = QuantileSketch::new();
        s.record(us(1_000));
        s.record(us(3_000));
        assert_eq!(s.mean(), us(2_000));
    }

    #[test]
    fn count_above_vlrt_threshold() {
        let mut s = QuantileSketch::new();
        for _ in 0..100 {
            s.record(SimDuration::from_millis(2));
        }
        s.record(SimDuration::from_millis(3_050));
        s.record(SimDuration::from_millis(6_100));
        assert_eq!(s.count_above(SimDuration::from_secs(3)), 2);
    }

    #[test]
    fn clear_resets_but_keeps_allocation() {
        let mut s = QuantileSketch::new();
        s.record(SimDuration::from_secs(9));
        let cap = s.counts.len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.counts.len(), cap);
        assert_eq!(s.quantile(0.99), None);
    }

    #[test]
    fn extreme_values_do_not_overflow_keys() {
        let mut s = QuantileSketch::new();
        s.record(us(u64::MAX));
        s.record(us(0));
        assert_eq!(s.total(), 2);
        assert!(s.counts.len() <= MAX_KEY + 1);
        let top = s.quantile(1.0).unwrap().as_micros();
        let rel = (top as f64 - u64::MAX as f64).abs() / u64::MAX as f64;
        assert!(rel <= QuantileSketch::RELATIVE_ERROR, "rel {rel}");
    }

    /// The exact nearest-rank reference the sketch approximates.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        sorted[target - 1]
    }

    proptest! {
        /// Sketch quantiles stay within the documented relative-error
        /// bound of the exact order statistic, for arbitrary sample sets
        /// spanning microseconds to minutes.
        #[test]
        fn quantiles_within_relative_error(
            samples in proptest::collection::vec(0u64..120_000_000, 1..400),
            qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
        ) {
            let mut sketch = QuantileSketch::new();
            for &v in &samples {
                sketch.record(us(v));
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &q in &qs {
                let exact = exact_quantile(&sorted, q) as f64;
                let got = sketch.quantile(q).unwrap().as_micros() as f64;
                let tolerance = exact * QuantileSketch::RELATIVE_ERROR + 1e-9;
                prop_assert!(
                    (got - exact).abs() <= tolerance,
                    "q={q} exact={exact} got={got}"
                );
            }
        }

        /// Merge is associative and commutative: any shard split, merged
        /// in any order, equals the unsharded sketch byte-for-byte.
        #[test]
        fn merge_is_shard_order_stable(
            samples in proptest::collection::vec(0u64..60_000_000, 1..300),
            shards in 1usize..6,
        ) {
            let mut whole = QuantileSketch::new();
            let mut parts: Vec<QuantileSketch> =
                (0..shards).map(|_| QuantileSketch::new()).collect();
            for (i, &v) in samples.iter().enumerate() {
                whole.record(us(v));
                parts[i % shards].record(us(v));
            }
            // forward merge order
            let mut fwd = QuantileSketch::new();
            for p in &parts {
                fwd.merge(p);
            }
            // reverse merge order
            let mut rev = QuantileSketch::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            // right-associated merge: p0 + (p1 + (p2 + ...))
            let mut assoc = QuantileSketch::new();
            for p in parts.iter().rev() {
                let mut acc = p.clone();
                acc.merge(&assoc);
                assoc = acc;
            }
            prop_assert_eq!(&fwd, &whole);
            prop_assert_eq!(&rev, &whole);
            prop_assert_eq!(&assoc, &whole);
        }

        /// Quantile is monotone in q and total is conserved.
        #[test]
        fn quantile_monotone_and_total_conserved(
            samples in proptest::collection::vec(0u64..10_000_000, 1..200),
        ) {
            let mut s = QuantileSketch::new();
            for &v in &samples {
                s.record(us(v));
            }
            prop_assert_eq!(s.total(), samples.len() as u64);
            let bucket_sum: u64 = s.counts.iter().sum();
            prop_assert_eq!(bucket_sum, s.total());
            let mut prev = SimDuration::ZERO;
            for i in 0..=10 {
                let q = f64::from(i) / 10.0;
                let v = s.quantile(q).unwrap();
                prop_assert!(v >= prev);
                prev = v;
            }
        }
    }
}
