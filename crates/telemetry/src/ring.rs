//! Bounded-memory windowed series: a ring of recent fine windows backed by
//! tiered downsampling.
//!
//! [`crate::series::WindowedSeries`] keeps every window it ever touched —
//! O(horizon) storage, which is what caps runs at Fig.-1 scale (ROADMAP
//! item 1). [`RingSeries`] is the streaming alternative: the most recent
//! windows are retained at full 50 ms resolution, windows evicted from that
//! ring collapse 10:1 into a coarse ring, and windows evicted from the
//! coarse ring fold into a single "ancient" aggregate. Memory is
//! O(retained windows), independent of the horizon, and nothing is lost —
//! counts and sums are conserved across the three tiers.
//!
//! Downsampling is pure aggregate arithmetic on window indices, so a ring
//! fed the same samples in the same order is bit-identical regardless of
//! horizon, shard count, or wall-clock timing.

use ntier_des::time::{SimDuration, SimTime};
use std::collections::VecDeque;

use crate::series::WindowAgg;

fn fold(into: &mut WindowAgg, w: &WindowAgg) {
    into.sum += w.sum;
    into.count += w.count;
    if w.max > into.max {
        into.max = w.max;
    }
    if w.count > 0 {
        into.last = w.last;
    }
}

/// A fixed-capacity ring of consecutive windows, evicting the oldest.
#[derive(Debug, Clone, Default, PartialEq)]
struct Ring {
    /// Index of the first retained window (`aggs[0]`).
    start: u64,
    aggs: VecDeque<WindowAgg>,
}

impl Ring {
    /// Slides the ring forward so window `idx` is retained, returning
    /// evicted `(index, agg)` pairs oldest-first via `evict`.
    fn ensure(&mut self, idx: u64, cap: usize, mut evict: impl FnMut(u64, WindowAgg)) {
        if self.aggs.is_empty() {
            self.start = idx;
            self.aggs.push_back(WindowAgg::default());
            return;
        }
        let newest = self.start + self.aggs.len() as u64 - 1;
        for _ in newest..idx {
            self.aggs.push_back(WindowAgg::default());
            while self.aggs.len() > cap {
                let old = self.aggs.pop_front().expect("ring is non-empty");
                evict(self.start, old);
                self.start += 1;
            }
        }
    }

    fn get_mut(&mut self, idx: u64) -> Option<&mut WindowAgg> {
        idx.checked_sub(self.start)
            .and_then(|off| self.aggs.get_mut(off as usize))
    }

    fn get(&self, idx: u64) -> Option<&WindowAgg> {
        idx.checked_sub(self.start)
            .and_then(|off| self.aggs.get(off as usize))
    }
}

/// A windowed series with bounded retention: recent windows at full
/// resolution, older windows tiered down 10:1, the rest in one aggregate.
///
/// Samples must arrive in nondecreasing window order (the engine records at
/// event-handle time, which is monotone); a sample older than the fine
/// ring's retention folds straight into the coarse tier or the ancient
/// aggregate instead of resurrecting an evicted window.
///
/// # Example
///
/// ```
/// use ntier_des::prelude::*;
/// use ntier_telemetry::RingSeries;
///
/// let mut r = RingSeries::paper_default();
/// for s in 0..3_600u64 {
///     r.add(SimTime::from_secs(s), 1.0);
/// }
/// // an hour of 1 s samples, yet storage stays at the retention caps
/// assert!(r.retained_windows() <= RingSeries::FINE_CAP + RingSeries::COARSE_CAP);
/// assert_eq!(r.total_count(), 3_600);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingSeries {
    window: SimDuration,
    fine_cap: usize,
    coarse_factor: u64,
    coarse_cap: usize,
    fine: Ring,
    coarse: Ring,
    ancient: WindowAgg,
}

impl RingSeries {
    /// Default fine retention: 256 windows (12.8 s at 50 ms).
    pub const FINE_CAP: usize = 256;
    /// Default coarse retention: 256 windows of 10× width (~2 min more).
    pub const COARSE_CAP: usize = 256;
    /// Default downsampling factor between the tiers.
    pub const COARSE_FACTOR: u64 = 10;

    /// Creates a ring with explicit retention parameters.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, either cap is zero, or
    /// `coarse_factor < 2`.
    pub fn new(
        window: SimDuration,
        fine_cap: usize,
        coarse_factor: u64,
        coarse_cap: usize,
    ) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        assert!(fine_cap > 0 && coarse_cap > 0, "caps must be non-zero");
        assert!(coarse_factor >= 2, "downsampling must actually downsample");
        RingSeries {
            window,
            fine_cap,
            coarse_factor,
            coarse_cap,
            fine: Ring::default(),
            coarse: Ring::default(),
            ancient: WindowAgg::default(),
        }
    }

    /// The paper configuration: 50 ms fine windows, 10:1 downsampling,
    /// 256 windows retained per tier.
    pub fn paper_default() -> Self {
        RingSeries::new(
            SimDuration::from_millis(crate::MONITOR_WINDOW_MS),
            Self::FINE_CAP,
            Self::COARSE_FACTOR,
            Self::COARSE_CAP,
        )
    }

    /// The fine window size.
    pub fn window_size(&self) -> SimDuration {
        self.window
    }

    /// Adds `value` to the window containing `t`, downsampling as needed.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = t.window_index(self.window);
        let sample = WindowAgg {
            sum: value,
            count: 1,
            max: value,
            last: value,
        };
        self.fold_window(idx, &sample);
    }

    /// Folds one fine-window aggregate into the tiers.
    fn fold_window(&mut self, idx: u64, agg: &WindowAgg) {
        // Slide the fine ring forward; evictions cascade into the coarse
        // tier, whose own evictions cascade into the ancient aggregate.
        let (factor, coarse_cap) = (self.coarse_factor, self.coarse_cap);
        let coarse = &mut self.coarse;
        let ancient = &mut self.ancient;
        self.fine.ensure(idx, self.fine_cap, |fine_idx, old| {
            let cidx = fine_idx / factor;
            coarse.ensure(cidx, coarse_cap, |_, cold| fold(ancient, &cold));
            if let Some(c) = coarse.get_mut(cidx) {
                fold(c, &old);
            } else {
                // Already evicted from the coarse tier too: straight to
                // the ancient aggregate.
                fold(ancient, &old);
            }
        });
        if let Some(w) = self.fine.get_mut(idx) {
            fold(w, agg);
        } else if let Some(c) = self.coarse.get_mut(idx / self.coarse_factor) {
            fold(c, agg);
        } else {
            fold(&mut self.ancient, agg);
        }
    }

    /// The fine-resolution aggregate for window `idx`, if still retained.
    pub fn fine_window(&self, idx: u64) -> Option<WindowAgg> {
        self.fine.get(idx).copied()
    }

    /// Index of the oldest fine window still retained (`None` when empty).
    pub fn fine_start(&self) -> Option<u64> {
        (!self.fine.aggs.is_empty()).then_some(self.fine.start)
    }

    /// Index one past the newest fine window.
    pub fn fine_end(&self) -> Option<u64> {
        (!self.fine.aggs.is_empty()).then_some(self.fine.start + self.fine.aggs.len() as u64)
    }

    /// Iterates `(window_start_time, aggregate)` over the retained fine
    /// windows, oldest first.
    pub fn fine_iter(&self) -> impl Iterator<Item = (SimTime, WindowAgg)> + '_ {
        let w = self.window.as_micros();
        let start = self.fine.start;
        self.fine
            .aggs
            .iter()
            .enumerate()
            .map(move |(i, agg)| (SimTime::from_micros((start + i as u64) * w), *agg))
    }

    /// Iterates `(window_start_time, aggregate)` over the retained coarse
    /// windows (each spanning `coarse_factor` fine windows), oldest first.
    pub fn coarse_iter(&self) -> impl Iterator<Item = (SimTime, WindowAgg)> + '_ {
        let w = self.window.as_micros() * self.coarse_factor;
        let start = self.coarse.start;
        self.coarse
            .aggs
            .iter()
            .enumerate()
            .map(move |(i, agg)| (SimTime::from_micros((start + i as u64) * w), *agg))
    }

    /// Everything older than the coarse tier, folded into one aggregate.
    pub fn ancient(&self) -> WindowAgg {
        self.ancient
    }

    /// Total retained window slots across both rings — the quantity that
    /// stays bounded no matter the horizon.
    pub fn retained_windows(&self) -> usize {
        self.fine.aggs.len() + self.coarse.aggs.len()
    }

    /// Upper bound on `retained_windows` for this configuration.
    pub fn retention_cap(&self) -> usize {
        self.fine_cap + self.coarse_cap
    }

    /// Total sample count across all three tiers (conservation invariant:
    /// equals the number of `add` calls).
    pub fn total_count(&self) -> u64 {
        let fine: u64 = self.fine.aggs.iter().map(|w| w.count).sum();
        let coarse: u64 = self.coarse.aggs.iter().map(|w| w.count).sum();
        fine + coarse + self.ancient.count
    }

    /// Total of all recorded values across all three tiers.
    pub fn total_sum(&self) -> f64 {
        let fine: f64 = self.fine.aggs.iter().map(|w| w.sum).sum();
        let coarse: f64 = self.coarse.aggs.iter().map(|w| w.sum).sum();
        fine + coarse + self.ancient.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::WindowedSeries;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn short_run_matches_full_series_exactly() {
        let mut ring = RingSeries::paper_default();
        let mut full = WindowedSeries::paper_default();
        for t in [5u64, 60, 110, 140, 260, 300, 999] {
            ring.add(ms(t), t as f64);
            full.add(ms(t), t as f64);
        }
        for idx in 0..full.len() as u64 {
            assert_eq!(
                ring.fine_window(idx).unwrap_or_default(),
                full.window(idx as usize),
                "window {idx}"
            );
        }
    }

    #[test]
    fn long_run_stays_bounded_and_conserves_mass() {
        let mut ring = RingSeries::paper_default();
        let n = 200_000u64; // 10_000 s of 50 ms windows, 1 sample each
        for i in 0..n {
            ring.add(ms(i * 50), 1.0);
        }
        assert!(ring.retained_windows() <= ring.retention_cap());
        assert_eq!(ring.total_count(), n);
        assert_eq!(ring.total_sum(), n as f64);
        assert!(
            ring.ancient().count > 0,
            "old windows reached the ancient tier"
        );
    }

    #[test]
    fn evicted_fine_windows_collapse_ten_to_one() {
        let mut ring = RingSeries::new(SimDuration::from_millis(50), 4, 10, 8);
        for i in 0..40u64 {
            ring.add(ms(i * 50), 1.0);
        }
        // fine keeps the last 4 windows; 36 older ones collapsed coarse-ward
        assert_eq!(ring.fine.aggs.len(), 4);
        let coarse_count: u64 = ring.coarse.aggs.iter().map(|w| w.count).sum();
        assert_eq!(coarse_count + ring.ancient.count, 36);
        // a full coarse window aggregates exactly 10 fine windows
        assert!(ring.coarse.aggs.iter().any(|w| w.count == 10));
        assert_eq!(ring.total_count(), 40);
    }

    #[test]
    fn stale_sample_lands_in_coarse_or_ancient() {
        let mut ring = RingSeries::new(SimDuration::from_millis(50), 4, 10, 4);
        for i in 0..200u64 {
            ring.add(ms(i * 50), 1.0);
        }
        let before = ring.total_count();
        // Window 0 left even the coarse tier long ago.
        ring.add(ms(0), 7.0);
        assert_eq!(ring.total_count(), before + 1);
    }

    proptest! {
        /// On the retained fine range the ring is byte-identical to the
        /// unbounded series, for arbitrary monotone sample streams.
        #[test]
        fn ring_equals_full_series_on_retained_range(
            gaps in proptest::collection::vec(0u64..400, 1..300),
            values in proptest::collection::vec(0.0f64..100.0, 1..300),
        ) {
            let mut ring = RingSeries::paper_default();
            let mut full = WindowedSeries::paper_default();
            let mut t = 0u64;
            for (g, v) in gaps.iter().zip(values.iter().cycle()) {
                t += g;
                ring.add(ms(t), *v);
                full.add(ms(t), *v);
            }
            prop_assert!(ring.retained_windows() <= ring.retention_cap());
            if let (Some(start), Some(end)) = (ring.fine_start(), ring.fine_end()) {
                for idx in start..end {
                    prop_assert_eq!(
                        ring.fine_window(idx).unwrap_or_default(),
                        full.window(idx as usize),
                        "window {}", idx
                    );
                }
            }
            // Mass conservation across the tiers.
            prop_assert_eq!(ring.total_count(), gaps.len() as u64);
            prop_assert!((ring.total_sum() - full.total()).abs() < 1e-6);
        }
    }
}
