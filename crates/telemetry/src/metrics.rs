//! The streaming metrics plane: periodic engine snapshots with bounded
//! memory, rendered as JSONL, CSV, or Prometheus text.
//!
//! The final run report tells you what happened after the run; the
//! paper's method needs to see queue depth, drops and latency
//! quantiles *while* the run executes — millibottlenecks are invisible at
//! end-of-run aggregation. A [`MetricsRegistry`] accumulates completion
//! latencies into a run-wide [`QuantileSketch`], a per-interval recent
//! window sketch, and a bounded [`RingSeries`]; on every `MetricsTick`
//! engine event the engine hands it a [`MetricsSample`] of raw gauges and
//! the registry freezes a [`MetricsSnapshot`].
//!
//! Everything in a snapshot is an integer (utilization in ppm), so the
//! JSONL/CSV bytes are identical across platforms, runner thread counts
//! and engine shard counts — the same determinism contract the engine's
//! goldens pin.

use ntier_des::time::{SimDuration, SimTime};

use crate::ring::RingSeries;
use crate::sketch::QuantileSketch;

/// Configuration for the streaming metrics plane. Disabled by default —
/// a `SystemConfig` without one takes exactly the pre-metrics code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Snapshot period (the `MetricsTick` cadence).
    pub interval: SimDuration,
}

impl MetricsConfig {
    /// Snapshots every `interval` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn every(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "metrics interval must be non-zero");
        MetricsConfig { interval }
    }

    /// The paper's monitoring cadence: one snapshot per second (20 of the
    /// 50 ms analysis windows).
    pub fn paper_default() -> Self {
        MetricsConfig::every(SimDuration::from_secs(1))
    }
}

/// Raw per-replica gauges the engine reads at tick time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaSample {
    /// Requests in service plus backlog (the paper's `SysQDepth`).
    pub depth: u64,
    /// Cumulative admission drops at this replica.
    pub drops: u64,
    /// Mean utilization from t=0 through now, in parts-per-million.
    pub util_ppm: u64,
}

/// Raw per-tier gauges the engine reads at tick time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierSample {
    /// Per-replica gauges, replica-id order.
    pub replicas: Vec<ReplicaSample>,
}

/// Everything the engine hands the registry on a `MetricsTick`: raw
/// counters and gauges only — quantiles and deltas are the registry's job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSample {
    /// Simulated time of the tick.
    pub now: SimTime,
    /// Events handled so far (engine self-metric).
    pub events_handled: u64,
    /// Events ever scheduled; `scheduled - handled` is the calendar
    /// occupancy, stable across shard counts and hot-path batching where a
    /// raw queue length is not.
    pub events_scheduled: u64,
    /// Live entries in the request slab.
    pub slab_live: u64,
    /// Total slots the request slab has grown to.
    pub slab_slots: u64,
    /// Requests injected so far.
    pub injected: u64,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests failed so far.
    pub failed: u64,
    /// Requests shed so far.
    pub shed: u64,
    /// Admission drops so far, all tiers.
    pub drops_total: u64,
    /// Retries launched so far, all tiers.
    pub retries: u64,
    /// Hedges launched so far.
    pub hedges: u64,
    /// Per-tier gauges, tier order.
    pub tiers: Vec<TierSample>,
}

/// One frozen snapshot: the sample's gauges plus sketch quantiles and
/// since-last-tick deltas. All integers — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Simulated time of the snapshot, microseconds.
    pub t_us: u64,
    /// Events handled so far.
    pub events_handled: u64,
    /// Events handled since the previous snapshot (divide by the interval
    /// for simulated events/s).
    pub events_delta: u64,
    /// Scheduled-but-unhandled events (calendar occupancy).
    pub calendar_occupancy: u64,
    /// Live request-slab entries.
    pub slab_live: u64,
    /// Request-slab capacity (slots ever allocated).
    pub slab_slots: u64,
    /// Cumulative injected / completed / failed / shed requests.
    pub injected: u64,
    /// See [`MetricsSnapshot::injected`].
    pub completed: u64,
    /// See [`MetricsSnapshot::injected`].
    pub failed: u64,
    /// See [`MetricsSnapshot::injected`].
    pub shed: u64,
    /// Completions since the previous snapshot.
    pub completed_delta: u64,
    /// Cumulative admission drops / retries / hedges.
    pub drops_total: u64,
    /// See [`MetricsSnapshot::drops_total`].
    pub retries: u64,
    /// See [`MetricsSnapshot::drops_total`].
    pub hedges: u64,
    /// Run-wide latency quantiles from the sketch, microseconds (0 while
    /// nothing has completed).
    pub p50_us: u64,
    /// See [`MetricsSnapshot::p50_us`].
    pub p99_us: u64,
    /// Quantiles over completions since the previous snapshot only.
    pub recent_p50_us: u64,
    /// See [`MetricsSnapshot::recent_p50_us`].
    pub recent_p99_us: u64,
    /// Number of completions the recent quantiles summarize.
    pub recent_samples: u64,
    /// Per-tier gauges, tier order.
    pub tiers: Vec<TierSample>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON line (stable field order, integers
    /// only — byte-identical across platforms and shard counts).
    pub fn jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"t_us\":{},\"events\":{},\"events_delta\":{},\"calendar_occupancy\":{},\
             \"slab_live\":{},\"slab_slots\":{},\"injected\":{},\"completed\":{},\
             \"failed\":{},\"shed\":{},\"completed_delta\":{},\"drops\":{},\
             \"retries\":{},\"hedges\":{},\"p50_us\":{},\"p99_us\":{},\
             \"recent_p50_us\":{},\"recent_p99_us\":{},\"recent_samples\":{},\"tiers\":[",
            self.t_us,
            self.events_handled,
            self.events_delta,
            self.calendar_occupancy,
            self.slab_live,
            self.slab_slots,
            self.injected,
            self.completed,
            self.failed,
            self.shed,
            self.completed_delta,
            self.drops_total,
            self.retries,
            self.hedges,
            self.p50_us,
            self.p99_us,
            self.recent_p50_us,
            self.recent_p99_us,
            self.recent_samples,
        );
        for (t, tier) in self.tiers.iter().enumerate() {
            if t > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"tier\":{t},\"replicas\":[");
            for (r, rep) in tier.replicas.iter().enumerate() {
                if r > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"depth\":{},\"drops\":{},\"util_ppm\":{}}}",
                    rep.depth, rep.drops, rep.util_ppm
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// CSV header matching [`MetricsSnapshot::csv_row`] (tiers flattened
    /// out — per-replica detail lives in the JSONL stream).
    pub const CSV_HEADER: &'static str = "t_us,events,events_delta,calendar_occupancy,slab_live,\
         slab_slots,injected,completed,failed,shed,completed_delta,drops,retries,hedges,\
         p50_us,p99_us,recent_p50_us,recent_p99_us,recent_samples";

    /// Renders the scalar columns as one CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.t_us,
            self.events_handled,
            self.events_delta,
            self.calendar_occupancy,
            self.slab_live,
            self.slab_slots,
            self.injected,
            self.completed,
            self.failed,
            self.shed,
            self.completed_delta,
            self.drops_total,
            self.retries,
            self.hedges,
            self.p50_us,
            self.p99_us,
            self.recent_p50_us,
            self.recent_p99_us,
            self.recent_samples
        )
    }

    /// Renders the snapshot in the Prometheus text exposition format —
    /// what the live testbed's `/metrics` endpoint serves.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(512);
        let mut gauge = |name: &str, help: &str, v: u64| {
            let _ = write!(s, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n");
        };
        gauge(
            "ntier_time_us",
            "Clock at snapshot, microseconds",
            self.t_us,
        );
        gauge("ntier_events_total", "Events handled", self.events_handled);
        gauge(
            "ntier_calendar_occupancy",
            "Scheduled-but-unhandled events",
            self.calendar_occupancy,
        );
        gauge(
            "ntier_slab_live",
            "Live request-slab entries",
            self.slab_live,
        );
        gauge("ntier_injected_total", "Requests injected", self.injected);
        gauge(
            "ntier_completed_total",
            "Requests completed",
            self.completed,
        );
        gauge("ntier_failed_total", "Requests failed", self.failed);
        gauge("ntier_shed_total", "Requests shed", self.shed);
        gauge("ntier_drops_total", "Admission drops", self.drops_total);
        gauge("ntier_retries_total", "Retries launched", self.retries);
        gauge("ntier_hedges_total", "Hedges launched", self.hedges);
        gauge("ntier_latency_p50_us", "Run-wide p50 latency", self.p50_us);
        gauge("ntier_latency_p99_us", "Run-wide p99 latency", self.p99_us);
        gauge(
            "ntier_recent_latency_p50_us",
            "p50 latency over the last interval",
            self.recent_p50_us,
        );
        gauge(
            "ntier_recent_latency_p99_us",
            "p99 latency over the last interval",
            self.recent_p99_us,
        );
        for (t, tier) in self.tiers.iter().enumerate() {
            for (r, rep) in tier.replicas.iter().enumerate() {
                let _ = write!(
                    s,
                    "ntier_replica_depth{{tier=\"{t}\",replica=\"{r}\"}} {}\n\
                     ntier_replica_drops{{tier=\"{t}\",replica=\"{r}\"}} {}\n\
                     ntier_replica_util_ppm{{tier=\"{t}\",replica=\"{r}\"}} {}\n",
                    rep.depth, rep.drops, rep.util_ppm
                );
            }
        }
        s
    }
}

/// The streaming accumulator the engine (or the live testbed's wall-clock
/// mirror) feeds: completion latencies in, periodic snapshots out, memory
/// O(retained windows) regardless of horizon.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    interval: SimDuration,
    /// Run-wide latency sketch.
    sketch: QuantileSketch,
    /// Latencies since the last snapshot; cleared per tick.
    window: QuantileSketch,
    /// Bounded per-window latency series (values in microseconds).
    ring: RingSeries,
    snapshots: Vec<MetricsSnapshot>,
    prev_events: u64,
    prev_completed: u64,
}

impl MetricsRegistry {
    /// Creates a registry snapshotting at the config's interval.
    pub fn new(cfg: &MetricsConfig) -> Self {
        MetricsRegistry {
            interval: cfg.interval,
            sketch: QuantileSketch::new(),
            window: QuantileSketch::new(),
            ring: RingSeries::paper_default(),
            snapshots: Vec::new(),
            prev_events: 0,
            prev_completed: 0,
        }
    }

    /// The snapshot cadence.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Records one completion latency observed at time `t`.
    pub fn record_latency(&mut self, t: SimTime, latency: SimDuration) {
        self.sketch.record(latency);
        self.window.record(latency);
        self.ring.add(t, latency.as_micros() as f64);
    }

    /// Freezes one snapshot from the engine's raw `sample`, returning a
    /// reference to it (the engine streams it to a sink if one is
    /// attached). Clears the recent-window sketch.
    pub fn tick(&mut self, sample: MetricsSample) -> &MetricsSnapshot {
        let q = |s: &QuantileSketch, q: f64| s.quantile(q).map_or(0, |d| d.as_micros());
        let snap = MetricsSnapshot {
            t_us: sample.now.as_micros(),
            events_handled: sample.events_handled,
            events_delta: sample.events_handled - self.prev_events,
            calendar_occupancy: sample.events_scheduled - sample.events_handled,
            slab_live: sample.slab_live,
            slab_slots: sample.slab_slots,
            injected: sample.injected,
            completed: sample.completed,
            failed: sample.failed,
            shed: sample.shed,
            completed_delta: sample.completed - self.prev_completed,
            drops_total: sample.drops_total,
            retries: sample.retries,
            hedges: sample.hedges,
            p50_us: q(&self.sketch, 0.50),
            p99_us: q(&self.sketch, 0.99),
            recent_p50_us: q(&self.window, 0.50),
            recent_p99_us: q(&self.window, 0.99),
            recent_samples: self.window.total(),
            tiers: sample.tiers,
        };
        self.prev_events = sample.events_handled;
        self.prev_completed = sample.completed;
        self.window.clear();
        self.snapshots.push(snap);
        self.snapshots.last().expect("just pushed")
    }

    /// All snapshots frozen so far, tick order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// The run-wide latency sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// The bounded per-window latency series.
    pub fn ring(&self) -> &RingSeries {
        &self.ring
    }

    /// The whole snapshot stream as JSONL (one line per snapshot).
    pub fn jsonl(&self) -> String {
        let mut s = String::new();
        for snap in &self.snapshots {
            s.push_str(&snap.jsonl());
            s.push('\n');
        }
        s
    }

    /// The whole snapshot stream as CSV (header plus one row per snapshot).
    pub fn csv(&self) -> String {
        let mut s = String::from(MetricsSnapshot::CSV_HEADER);
        s.push('\n');
        for snap in &self.snapshots {
            s.push_str(&snap.csv_row());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(secs: u64, events: u64, completed: u64) -> MetricsSample {
        MetricsSample {
            now: SimTime::from_secs(secs),
            events_handled: events,
            events_scheduled: events + 5,
            slab_live: 3,
            slab_slots: 16,
            injected: completed + 3,
            completed,
            drops_total: 1,
            tiers: vec![TierSample {
                replicas: vec![ReplicaSample {
                    depth: 2,
                    drops: 1,
                    util_ppm: 433_000,
                }],
            }],
            ..MetricsSample::default()
        }
    }

    #[test]
    fn tick_computes_deltas_and_quantiles() {
        let mut reg = MetricsRegistry::new(&MetricsConfig::paper_default());
        reg.record_latency(SimTime::from_millis(100), SimDuration::from_millis(2));
        reg.record_latency(SimTime::from_millis(200), SimDuration::from_millis(2));
        let s1 = reg.tick(sample_at(1, 100, 2)).clone();
        assert_eq!(s1.events_delta, 100);
        assert_eq!(s1.completed_delta, 2);
        assert_eq!(s1.calendar_occupancy, 5);
        assert_eq!(s1.recent_samples, 2);
        assert!(s1.recent_p50_us > 0);
        // second tick with no completions: recent window is empty
        let s2 = reg.tick(sample_at(2, 150, 2)).clone();
        assert_eq!(s2.events_delta, 50);
        assert_eq!(s2.completed_delta, 0);
        assert_eq!(s2.recent_samples, 0);
        assert_eq!(s2.recent_p50_us, 0);
        assert!(s2.p50_us > 0, "run-wide sketch persists");
        assert_eq!(reg.snapshots().len(), 2);
    }

    #[test]
    fn jsonl_is_stable_and_greppable() {
        let mut reg = MetricsRegistry::new(&MetricsConfig::paper_default());
        reg.record_latency(SimTime::from_millis(10), SimDuration::from_millis(3));
        reg.tick(sample_at(1, 10, 1));
        let line = reg.jsonl();
        assert!(line.starts_with("{\"t_us\":1000000,"), "line: {line}");
        assert!(line.contains("\"completed\":1"));
        assert!(line.contains("\"tiers\":[{\"tier\":0,\"replicas\":[{\"depth\":2,"));
        assert!(line.ends_with("}\n"));
        // identical inputs render identical bytes
        let mut reg2 = MetricsRegistry::new(&MetricsConfig::paper_default());
        reg2.record_latency(SimTime::from_millis(10), SimDuration::from_millis(3));
        reg2.tick(sample_at(1, 10, 1));
        assert_eq!(line, reg2.jsonl());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let mut reg = MetricsRegistry::new(&MetricsConfig::paper_default());
        reg.tick(sample_at(1, 10, 0));
        let header_cols = MetricsSnapshot::CSV_HEADER.split(',').count();
        let row_cols = reg.snapshots()[0].csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn prometheus_text_has_metric_lines() {
        let mut reg = MetricsRegistry::new(&MetricsConfig::paper_default());
        reg.record_latency(SimTime::from_millis(10), SimDuration::from_millis(3));
        let snap = reg.tick(sample_at(1, 10, 1)).clone();
        let text = snap.prometheus();
        assert!(text.contains("# TYPE ntier_completed_total gauge"));
        assert!(text.contains("ntier_completed_total 1"));
        assert!(text.contains("ntier_replica_depth{tier=\"0\",replica=\"0\"} 2"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = MetricsConfig::every(SimDuration::ZERO);
    }
}
