//! Fine-grained measurement substrate.
//!
//! The paper's experimental method rests on *micro-level event analysis*:
//! every inter-server message is timestamped at millisecond resolution and
//! resource use is aggregated in 50 ms windows. This crate provides those
//! instruments for the reproduction:
//!
//! * [`series::WindowedSeries`] — per-window counters/gauges (queue depths,
//!   VLRT counts per 50 ms, drops per window);
//! * [`series::UtilizationSeries`] — busy-time accounting per window
//!   (the CPU-utilization timelines in Figs. 3, 5, 7–11);
//! * [`histogram::LatencyHistogram`] — response-time histograms with
//!   multi-modal cluster detection (Fig. 1's 0/3/6/9 s peaks);
//! * [`sketch::QuantileSketch`] — a deterministic, mergeable log-linear
//!   quantile sketch: the streaming/hot-path alternative to full
//!   histograms, with a documented relative-error bound;
//! * [`ring::RingSeries`] — bounded-memory windowed series via tiered
//!   downsampling (recent 50 ms windows, older collapsed 10:1);
//! * [`metrics`] — the streaming metrics plane: periodic
//!   [`metrics::MetricsSnapshot`]s rendered as JSONL/CSV/Prometheus text;
//! * [`stats`] — summary statistics (means, percentiles);
//! * [`render`] — ASCII/CSV output used by examples and the bench harness.
//!
//! Everything here is plain data: no clocks, no threads, no I/O besides the
//! explicit CSV writers.

pub mod histogram;
pub mod metrics;
pub mod render;
pub mod ring;
pub mod series;
pub mod sketch;
pub mod stats;

pub use histogram::LatencyHistogram;
pub use metrics::{MetricsConfig, MetricsRegistry, MetricsSample, MetricsSnapshot};
pub use ring::RingSeries;
pub use series::{UtilizationSeries, WindowedSeries};
pub use sketch::QuantileSketch;

/// The paper's monitoring window: 50 ms.
pub const MONITOR_WINDOW_MS: u64 = 50;

/// The paper's VLRT threshold: requests slower than 3 s are "very long
/// response time" requests.
pub const VLRT_THRESHOLD_MS: u64 = 3_000;
