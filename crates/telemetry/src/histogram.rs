//! Response-time histograms with multi-modal cluster detection.
//!
//! Figure 1 of the paper plots request frequency by response time on a
//! semi-log scale; the CTQO signature is a cluster of mass near 0 ms plus
//! satellite clusters at ~3, ~6 and ~9 s (TCP retransmissions).
//! [`LatencyHistogram`] regenerates that plot and [`LatencyHistogram::modes`]
//! recovers the cluster positions programmatically so tests can assert on
//! multi-modality instead of eyeballing charts.

use ntier_des::time::SimDuration;

/// A fixed-bucket histogram of request latencies.
///
/// # Example
///
/// ```
/// use ntier_des::prelude::*;
/// use ntier_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::paper_default();
/// h.record(SimDuration::from_millis(2));
/// h.record(SimDuration::from_millis(3_004)); // a VLRT request
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.count_above(SimDuration::from_secs(3)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bucket_width: SimDuration,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_micros: u128,
    max: SimDuration,
}

impl LatencyHistogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// samples beyond the last bucket go to an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        assert!(buckets > 0, "need at least one bucket");
        LatencyHistogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum_micros: 0,
            max: SimDuration::ZERO,
        }
    }

    /// The configuration used for Fig. 1: 50 ms buckets covering 0–12 s.
    pub fn paper_default() -> Self {
        LatencyHistogram::new(SimDuration::from_millis(50), 240)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let idx = (latency.as_micros() / self.bucket_width.as_micros()) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum_micros += u128::from(latency.as_micros());
        if latency > self.max {
            self.max = latency;
        }
    }

    /// Total number of samples (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that landed beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The largest recorded sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Mean latency over all samples; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_micros / u128::from(self.total)) as u64)
        }
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket_width
    }

    /// Iterates `(bucket_start, count)` over all regular buckets.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        let w = self.bucket_width.as_micros();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, c)| (SimDuration::from_micros(i as u64 * w), *c))
    }

    /// Number of samples at or above `threshold` (the VLRT count when called
    /// with 3 s).
    pub fn count_above(&self, threshold: SimDuration) -> u64 {
        let first = threshold
            .as_micros()
            .div_ceil(self.bucket_width.as_micros());
        let in_buckets: u64 = self.counts.iter().skip(first as usize).sum();
        in_buckets + self.overflow
    }

    /// An approximate quantile (bucket upper edge), `q` in `[0, 1]`.
    ///
    /// Returns `None` when the histogram is empty. Overflow samples resolve
    /// to [`LatencyHistogram::max`].
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(SimDuration::from_micros(
                    (i as u64 + 1) * self.bucket_width.as_micros(),
                ));
            }
        }
        Some(self.max)
    }

    /// Detects latency *modes*: contiguous runs of non-empty buckets
    /// separated by at least `min_gap` of empty time, each holding at least
    /// `min_count` samples. Returns the peak-bucket start time and the run's
    /// total count, in time order.
    ///
    /// For a CTQO run this returns clusters near 0 ms, ~3 s, ~6 s, ~9 s; for
    /// a healthy async run it returns the single service-time cluster.
    pub fn modes(&self, min_gap: SimDuration, min_count: u64) -> Vec<Mode> {
        let gap_buckets = (min_gap.as_micros() / self.bucket_width.as_micros()).max(1) as usize;
        let mut modes = Vec::new();
        let mut run: Option<RunState> = None;
        let mut empties = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let r = run.get_or_insert(RunState {
                    peak_bucket: i,
                    peak_count: c,
                    total: 0,
                });
                r.total += c;
                if c > r.peak_count {
                    r.peak_count = c;
                    r.peak_bucket = i;
                }
                empties = 0;
            } else {
                empties += 1;
                if empties >= gap_buckets {
                    if let Some(r) = run.take() {
                        if r.total >= min_count {
                            modes.push(self.mode_from_run(r));
                        }
                    }
                }
            }
        }
        if let Some(r) = run.take() {
            if r.total >= min_count {
                modes.push(self.mode_from_run(r));
            }
        }
        modes
    }

    fn mode_from_run(&self, r: RunState) -> Mode {
        Mode {
            peak: SimDuration::from_micros(r.peak_bucket as u64 * self.bucket_width.as_micros()),
            count: r.total,
        }
    }
}

#[derive(Debug)]
struct RunState {
    peak_bucket: usize,
    peak_count: u64,
    total: u64,
}

/// One detected latency cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Start of the run's peak bucket.
    pub peak: SimDuration,
    /// Total samples in the cluster.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = LatencyHistogram::new(ms(50), 10);
        h.record(ms(0));
        h.record(ms(49));
        h.record(ms(50));
        h.record(ms(499));
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_is_tracked_separately() {
        let mut h = LatencyHistogram::new(ms(50), 2);
        h.record(ms(1_000));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count_above(ms(100)), 1);
    }

    #[test]
    fn mean_and_max() {
        let mut h = LatencyHistogram::paper_default();
        h.record(ms(2));
        h.record(ms(4));
        assert_eq!(h.mean(), ms(3));
        assert_eq!(h.max(), ms(4));
    }

    #[test]
    fn vlrt_count_above_3s() {
        let mut h = LatencyHistogram::paper_default();
        for _ in 0..100 {
            h.record(ms(2));
        }
        h.record(ms(3_050));
        h.record(ms(6_100));
        h.record(ms(9_020));
        assert_eq!(h.count_above(SimDuration::from_secs(3)), 3);
    }

    #[test]
    fn quantile_tracks_distribution() {
        let mut h = LatencyHistogram::paper_default();
        for _ in 0..99 {
            h.record(ms(10));
        }
        h.record(ms(3_010));
        assert_eq!(h.quantile(0.5).unwrap(), ms(50)); // first bucket upper edge
        assert!(h.quantile(0.999).unwrap() >= SimDuration::from_secs(3));
        assert_eq!(LatencyHistogram::paper_default().quantile(0.5), None);
    }

    #[test]
    fn multimodal_detection_finds_retransmission_clusters() {
        let mut h = LatencyHistogram::paper_default();
        // bulk of fast requests
        for i in 0..10_000u64 {
            h.record(SimDuration::from_micros(500 + (i % 30) * 100));
        }
        // retransmission clusters at ~3s, ~6s, ~9s
        for i in 0..40u64 {
            h.record(ms(3_000 + i % 40));
            h.record(ms(6_010 + i % 30));
        }
        for i in 0..10u64 {
            h.record(ms(9_005 + i));
        }
        let modes = h.modes(SimDuration::from_millis(500), 5);
        assert_eq!(modes.len(), 4, "modes: {modes:?}");
        assert_eq!(modes[0].peak, ms(0));
        assert_eq!(modes[1].peak, ms(3_000));
        assert_eq!(modes[2].peak, ms(6_000));
        assert_eq!(modes[3].peak, ms(9_000));
    }

    #[test]
    fn unimodal_when_no_drops() {
        let mut h = LatencyHistogram::paper_default();
        for i in 0..5_000u64 {
            h.record(SimDuration::from_micros(400 + (i % 100) * 30));
        }
        let modes = h.modes(SimDuration::from_millis(500), 5);
        assert_eq!(modes.len(), 1);
        assert_eq!(modes[0].count, 5_000);
    }

    #[test]
    fn small_clusters_below_min_count_are_ignored() {
        let mut h = LatencyHistogram::paper_default();
        for _ in 0..100 {
            h.record(ms(5));
        }
        h.record(ms(6_000)); // a single outlier, not a mode
        let modes = h.modes(SimDuration::from_millis(500), 5);
        assert_eq!(modes.len(), 1);
    }

    proptest! {
        /// total == sum of buckets + overflow, for arbitrary sample sets.
        #[test]
        fn totals_are_conserved(samples in proptest::collection::vec(0u64..20_000, 0..500)) {
            let mut h = LatencyHistogram::new(ms(50), 100);
            for s in &samples {
                h.record(SimDuration::from_millis(*s));
            }
            let bucket_sum: u64 = h.iter().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_sum + h.overflow(), h.total());
            prop_assert_eq!(h.total(), samples.len() as u64);
        }

        /// count_above(0) counts everything; quantile is monotone in q.
        #[test]
        fn count_above_and_quantile_sanity(samples in proptest::collection::vec(0u64..12_000, 1..300)) {
            let mut h = LatencyHistogram::paper_default();
            for s in &samples {
                h.record(SimDuration::from_millis(*s));
            }
            prop_assert_eq!(h.count_above(SimDuration::ZERO), h.total());
            let q50 = h.quantile(0.5).unwrap();
            let q99 = h.quantile(0.99).unwrap();
            prop_assert!(q99 >= q50);
        }

        /// Modes partition all samples when min_count = 0... every sample
        /// belongs to exactly one run.
        #[test]
        fn modes_conserve_mass(samples in proptest::collection::vec(0u64..11_000, 1..300)) {
            let mut h = LatencyHistogram::paper_default();
            for s in &samples {
                h.record(SimDuration::from_millis(*s));
            }
            let modes = h.modes(SimDuration::from_millis(50), 0);
            let mode_mass: u64 = modes.iter().map(|m| m.count).sum();
            prop_assert_eq!(mode_mass + h.overflow(), h.total());
        }
    }
}
