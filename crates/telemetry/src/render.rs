//! ASCII and CSV rendering for figures.
//!
//! The bench harness and examples regenerate each figure as (a) an ASCII
//! chart printed to stdout and (b) a CSV with the underlying series, so
//! results can be compared against the paper or re-plotted externally.

use std::fmt::Write as _;

use crate::histogram::LatencyHistogram;
use ntier_des::time::SimDuration;

/// Renders a semi-log frequency-by-latency chart like the paper's Fig. 1.
///
/// One row per non-empty bucket group (grouped by `group` buckets); bar
/// length is proportional to `log10(count + 1)`.
pub fn semilog_histogram(h: &LatencyHistogram, group: usize, width: usize) -> String {
    let group = group.max(1);
    let width = width.max(10);
    let mut rows: Vec<(u64, u64)> = Vec::new(); // (start_ms, count)
    let mut acc = 0u64;
    let mut start_ms = 0u64;
    for (i, (t, c)) in h.iter().enumerate() {
        if i % group == 0 {
            if acc > 0 {
                rows.push((start_ms, acc));
            }
            acc = 0;
            start_ms = t.as_millis();
        }
        acc += c;
    }
    if acc > 0 {
        rows.push((start_ms, acc));
    }
    if h.overflow() > 0 {
        rows.push((u64::MAX, h.overflow()));
    }
    let max_log = rows
        .iter()
        .map(|(_, c)| ((*c + 1) as f64).log10())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>9}  frequency (log scale)",
        "latency", "count"
    );
    for (start, count) in rows {
        let bar_len = (((count + 1) as f64).log10() / max_log * width as f64).round() as usize;
        let label = if start == u64::MAX {
            ">range".to_string()
        } else {
            format!("{:.2}s", start as f64 / 1e3)
        };
        let _ = writeln!(
            out,
            "{label:>10} {count:>9}  {}",
            "#".repeat(bar_len.max(1))
        );
    }
    out
}

/// Renders a compact per-window sparkline for a series of values in `[0, 1]`
/// (e.g. utilization) or arbitrary non-negative values (auto-scaled).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let hi = values.iter().cloned().fold(0.0_f64, f64::max);
    if hi <= 0.0 {
        return TICKS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let idx = ((v / hi) * (TICKS.len() - 1) as f64).round() as usize;
            TICKS[idx.min(TICKS.len() - 1)]
        })
        .collect()
}

/// A labelled horizontal bar chart (used for throughput tables like Fig. 12).
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let width = width.max(10);
    let hi = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar = "#".repeat(((value / hi) * width as f64).round() as usize);
        let _ = writeln!(out, "{label:>label_w$} {value:>10.1} {bar}");
    }
    out
}

/// Serializes rows as CSV into a string (values are escaped minimally: any
/// field containing a comma or quote is quoted).
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Formats a duration as seconds with millisecond precision (chart axes).
pub fn secs_label(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semilog_histogram_includes_clusters_and_overflow() {
        let mut h = LatencyHistogram::new(SimDuration::from_millis(50), 100);
        for _ in 0..1000 {
            h.record(SimDuration::from_millis(5));
        }
        h.record(SimDuration::from_millis(3_001));
        h.record(SimDuration::from_secs(100)); // overflow
        let chart = semilog_histogram(&h, 10, 40);
        assert!(chart.contains("0.00s"), "{chart}");
        assert!(chart.contains("3.00s"), "{chart}");
        assert!(chart.contains(">range"), "{chart}");
    }

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn bar_chart_lines_up_labels() {
        let rows = vec![("sync".to_string(), 374.0), ("async".to_string(), 1200.0)];
        let chart = bar_chart(&rows, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("####################"));
    }

    #[test]
    fn csv_escapes_fields() {
        let csv = to_csv(
            &["a", "b"],
            &[vec!["1,5".to_string(), "say \"hi\"".to_string()]],
        );
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn secs_label_formats_millis() {
        assert_eq!(secs_label(SimDuration::from_millis(1_500)), "1.500");
    }
}
