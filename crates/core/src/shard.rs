//! Spatial partitioning of a topology for sharded single-run execution.
//!
//! A [`ShardPlan`] assigns every call-graph node (tier) to a shard. Node
//! ids are depth-first preorder (see [`crate::TopologyShape`]), so a
//! *contiguous* range of ids always covers whole subtrees except where a
//! range boundary cuts one parent→child edge — the natural cut line for an
//! n-tier system, because all cross-cut traffic is request/reply hops on
//! those few edges. The plan also derives the conservative-synchronization
//! lookahead for the cut: every cross-tier message takes at least one
//! network hop (`SystemConfig::hop_delay`), so a shard processing events at
//! time `t` cannot receive anything timestamped before `t + hop_delay`; the
//! 3 s SYN/RTO retransmit granularity only ever stretches that window
//! (retransmit arrivals are full RTO steps in the future). See DESIGN.md
//! §14 for the full derivation and the merge-order proof sketch.

use ntier_des::time::SimDuration;

use crate::topology::TopologyShape;

/// An assignment of topology nodes to shards, plus the lookahead the cut
/// supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of_tier: Vec<u8>,
    shards: usize,
    lookahead: SimDuration,
}

impl ShardPlan {
    /// Cuts `shape` into at most `shards` contiguous preorder ranges of
    /// near-equal node count. Node 0 (the client-facing root, which also
    /// hosts all client-side timers) is always on shard 0. `hop_delay` is
    /// the minimum cross-tier message latency and becomes the plan's
    /// lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn cut(shape: &TopologyShape, shards: usize, hop_delay: SimDuration) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        let n = shape.len();
        let effective = shards.min(n.max(1));
        // Contiguous near-equal ranges: tier t lands in shard
        // floor(t * effective / n), the standard balanced split. Preorder
        // contiguity keeps each shard a union of subtree fragments with a
        // minimal cross-cut edge count.
        let shard_of_tier = (0..n).map(|t| ((t * effective) / n.max(1)) as u8).collect();
        ShardPlan {
            shard_of_tier,
            shards,
            lookahead: hop_delay,
        }
    }

    /// The shard owning tier `t`.
    #[inline]
    pub fn shard_of_tier(&self, t: usize) -> usize {
        self.shard_of_tier[t] as usize
    }

    /// The shard count this plan was cut for (shards may be empty when the
    /// topology has fewer tiers than shards).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative lookahead the cut supports: the minimum latency of
    /// any cross-shard message.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Number of parent→child edges the cut severs — the cross-shard
    /// traffic surface, reported by the shard bench.
    pub fn cut_edges(&self, shape: &TopologyShape) -> usize {
        (0..shape.len())
            .filter(|&t| {
                shape.parent[t].is_some_and(|p| self.shard_of_tier[p] != self.shard_of_tier[t])
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_splits_into_contiguous_ranges() {
        let shape = TopologyShape::linear(6);
        let plan = ShardPlan::cut(&shape, 3, SimDuration::from_micros(50));
        let got: Vec<usize> = (0..6).map(|t| plan.shard_of_tier(t)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(plan.cut_edges(&shape), 2);
        assert_eq!(plan.lookahead(), SimDuration::from_micros(50));
    }

    #[test]
    fn root_is_always_on_shard_zero() {
        for shards in 1..8 {
            for n in 1..10 {
                let shape = TopologyShape::linear(n);
                let plan = ShardPlan::cut(&shape, shards, SimDuration::from_micros(1));
                assert_eq!(plan.shard_of_tier(0), 0, "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn more_shards_than_tiers_leaves_upper_shards_empty() {
        let shape = TopologyShape::linear(3);
        let plan = ShardPlan::cut(&shape, 8, SimDuration::from_micros(50));
        let got: Vec<usize> = (0..3).map(|t| plan.shard_of_tier(t)).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(plan.shards(), 8);
    }

    #[test]
    fn assignment_is_monotone_in_preorder() {
        let shape = TopologyShape::linear(11);
        let plan = ShardPlan::cut(&shape, 4, SimDuration::from_micros(50));
        let got: Vec<usize> = (0..11).map(|t| plan.shard_of_tier(t)).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "contiguous preorder ranges must be monotone");
        assert_eq!(plan.cut_edges(&shape), 3);
    }
}
