//! Operational-law sanity checks.
//!
//! Queueing theory's operational laws hold for *any* measured system,
//! simulator included — so they make sharp cross-checks that the engine's
//! accounting is coherent:
//!
//! * **utilization law** — `U = X · S`: a tier's utilization equals system
//!   throughput times its per-request service demand;
//! * **interactive response-time law** — `X = N / (Z + R)`: a closed-loop
//!   population's throughput is pinned by think time and response time.
//!
//! These are also the laws the reproduction's calibration is built on
//! (DESIGN.md §6 derives think time and demands from them), so the checks
//! double as calibration regression tests.

use crate::report::RunReport;

/// One law evaluation: expected vs. observed with relative error.
#[derive(Debug, Clone, PartialEq)]
pub struct LawCheck {
    /// Which law.
    pub law: &'static str,
    /// The value the law predicts.
    pub expected: f64,
    /// The measured value.
    pub observed: f64,
}

impl LawCheck {
    /// |observed − expected| / expected (0 when expected is 0 and observed
    /// is 0, infinite when only expected is 0).
    pub fn relative_error(&self) -> f64 {
        if self.expected == 0.0 {
            if self.observed == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.observed - self.expected).abs() / self.expected.abs()
        }
    }

    /// `true` when the relative error is within `tolerance`.
    pub fn holds_within(&self, tolerance: f64) -> bool {
        self.relative_error() <= tolerance
    }
}

impl std::fmt::Display for LawCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: expected {:.4}, observed {:.4} ({:.2}% error)",
            self.law,
            self.expected,
            self.observed,
            self.relative_error() * 100.0
        )
    }
}

/// Utilization law for one tier: predicted `U = X · S / cores` vs. the
/// tier's measured mean utilization.
///
/// `service_secs` is the tier's mean CPU demand per *request* (summing all
/// visits), `cores` its core count.
pub fn utilization_law(report: &RunReport, tier: usize, service_secs: f64, cores: u32) -> LawCheck {
    LawCheck {
        law: "utilization law (U = X·S)",
        expected: report.throughput * service_secs / f64::from(cores),
        observed: report.tiers[tier].mean_util(report.horizon),
    }
}

/// Interactive response-time law: predicted `X = N / (Z + R)` vs. measured
/// throughput, using the run's own mean response time.
pub fn interactive_law(report: &RunReport, clients: u32, think_secs: f64) -> LawCheck {
    let r = report.latency.mean().as_secs_f64();
    LawCheck {
        law: "interactive law (X = N/(Z+R))",
        expected: f64::from(clients) / (think_secs + r),
        observed: report.throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Workload};
    use crate::presets;
    use ntier_des::prelude::*;
    use ntier_workload::{ClosedLoopSpec, RequestMix};

    fn calm_run(clients: u32) -> RunReport {
        Engine::new(
            presets::sync_three_tier(),
            Workload::Closed {
                spec: ClosedLoopSpec::rubbos(clients),
                mix: RequestMix::rubbos_browse(),
            },
            SimDuration::from_secs(60),
            17,
        )
        .run()
    }

    #[test]
    fn utilization_law_holds_at_the_app_tier() {
        let report = calm_run(4_000);
        let mix = RequestMix::rubbos_browse();
        let check = utilization_law(&report, 1, mix.mean_app_demand_secs(), 1);
        assert!(check.holds_within(0.05), "{check}");
    }

    #[test]
    fn utilization_law_holds_at_the_db_tier() {
        let report = calm_run(4_000);
        let mix = RequestMix::rubbos_browse();
        let check = utilization_law(&report, 2, mix.mean_db_demand_secs(), 1);
        assert!(check.holds_within(0.05), "{check}");
    }

    #[test]
    fn interactive_law_holds_for_the_closed_loop() {
        let report = calm_run(2_000);
        let check = interactive_law(&report, 2_000, 7.0);
        assert!(check.holds_within(0.05), "{check}");
    }

    #[test]
    fn relative_error_edge_cases() {
        let zero = LawCheck {
            law: "t",
            expected: 0.0,
            observed: 0.0,
        };
        assert_eq!(zero.relative_error(), 0.0);
        let inf = LawCheck {
            law: "t",
            expected: 0.0,
            observed: 1.0,
        };
        assert!(inf.relative_error().is_infinite());
        assert!(!inf.holds_within(0.5));
        let ten = LawCheck {
            law: "t",
            expected: 1.0,
            observed: 1.1,
        };
        assert!((ten.relative_error() - 0.1).abs() < 1e-12);
        assert!(ten.to_string().contains("10.00%"));
    }
}
