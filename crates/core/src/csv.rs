//! CSV export of run reports.
//!
//! Every figure-bearing series of a [`RunReport`] serializes to a small CSV
//! bundle so results can be re-plotted outside this crate (gnuplot,
//! matplotlib, a spreadsheet). The bundle is produced as in-memory strings
//! ([`csv_bundle`]) — pure and testable — with a thin filesystem wrapper
//! ([`write_csv_bundle`]).

use std::io;
use std::path::Path;

use ntier_telemetry::render::to_csv;
use ntier_telemetry::{UtilizationSeries, WindowedSeries};

use crate::report::RunReport;

/// Serializes a report into `(file name, CSV content)` pairs:
///
/// * `summary.csv` — headline metrics (including the resilience totals);
/// * `latency_histogram.csv` — bucket start (ms) and count, plus overflow;
/// * `resilience.csv` — per-hop timeout/retry/budget/shed/breaker counters;
/// * `tier_<i>_<name>.csv` — per-50 ms-window queue peak, drops, VLRT,
///   own CPU utilization and interferer utilization.
///
/// Replicated tiers (`replicas > 1` in their spec) additionally emit one
/// `tier_<i>_r<r>_<name>.csv` per replica with the same columns — the
/// per-instance view behind the tier-level aggregate. Unreplicated runs
/// produce exactly the pre-replica file list, byte for byte.
///
/// Traced runs (`report.trace` is `Some`) append two more files:
///
/// * `trace_events.csv` — one row per retained span event;
/// * `trace_chains.csv` — the root-cause analysis: one row per attributed
///   3 s step of every VLRT/failed trace, with the culprit window.
///
/// Controlled runs (`report.control` is `Some`) append
/// `control_decisions.csv` — one row per controller decision with its
/// timestamp, tier scope, action label and the evidence that justified it.
/// Gray-failure detector verdicts ride in the same log, so `eject`/
/// `reinstate` decisions land there too, and `summary.csv` gains a
/// `health_decisions` row when (and only when) at least one was made.
///
/// Metered runs (`report.metrics` is `Some`) append `metrics.csv` — one row
/// per [`ntier_telemetry::MetricsSnapshot`] in tick order. Unmetered
/// bundles are unchanged, byte for byte.
pub fn csv_bundle(report: &RunReport) -> Vec<(String, String)> {
    let mut files = Vec::with_capacity(report.tiers.len() + 3);

    let mut summary_rows = vec![
        vec![
            "horizon_secs".into(),
            format!("{:.3}", report.horizon.as_secs_f64()),
        ],
        vec!["injected".into(), report.injected.to_string()],
        vec!["completed".into(), report.completed.to_string()],
        vec!["failed".into(), report.failed.to_string()],
        vec!["shed".into(), report.shed.to_string()],
        vec!["cancelled".into(), report.cancelled.to_string()],
        vec!["in_flight_end".into(), report.in_flight_end.to_string()],
        vec!["throughput_rps".into(), format!("{:.3}", report.throughput)],
        vec!["drops_total".into(), report.drops_total.to_string()],
        vec!["vlrt_total".into(), report.vlrt_total.to_string()],
        vec![
            "highest_mean_util".into(),
            format!("{:.4}", report.highest_mean_util()),
        ],
        vec!["timeouts".into(), report.resilience.timeouts.to_string()],
        vec!["app_retries".into(), report.resilience.retries.to_string()],
        vec![
            "budget_exhausted".into(),
            report.resilience.budget_exhausted.to_string(),
        ],
        vec![
            "breaker_transitions".into(),
            report.resilience.breaker_transitions.to_string(),
        ],
        vec![
            "orphan_completions".into(),
            report.resilience.orphan_completions.to_string(),
        ],
        vec!["hedges".into(), report.resilience.hedges.to_string()],
        vec![
            "cancels_propagated".into(),
            report.resilience.cancels_propagated.to_string(),
        ],
        vec![
            "wasted_work_saved".into(),
            report.resilience.wasted_work_saved.to_string(),
        ],
    ];
    // Gray-failure detection tally, appended only when the run actually
    // ejected or reinstated a replica so undetected bundles stay byte
    // for byte what they were.
    let health_decisions = report.control.as_ref().map_or(0, |log| {
        log.count(|a| {
            matches!(
                a,
                ntier_control::Action::Ejected { .. } | ntier_control::Action::Reinstated { .. }
            )
        })
    });
    if health_decisions > 0 {
        summary_rows.push(vec![
            "health_decisions".into(),
            health_decisions.to_string(),
        ]);
    }
    files.push((
        "summary.csv".to_string(),
        to_csv(&["metric", "value"], &summary_rows),
    ));

    let mut hist_rows: Vec<Vec<String>> = report
        .latency
        .iter()
        .map(|(start, count)| vec![start.as_millis().to_string(), count.to_string()])
        .collect();
    hist_rows.push(vec![
        "overflow".into(),
        report.latency.overflow().to_string(),
    ]);
    files.push((
        "latency_histogram.csv".to_string(),
        to_csv(&["bucket_start_ms", "count"], &hist_rows),
    ));

    let res_rows: Vec<Vec<String>> = report
        .tiers
        .iter()
        .enumerate()
        .map(|(i, tier)| {
            vec![
                i.to_string(),
                tier.name.clone(),
                tier.resilience.timeouts.to_string(),
                tier.resilience.retries.to_string(),
                tier.resilience.budget_exhausted.to_string(),
                tier.resilience.shed.to_string(),
                tier.resilience.breaker_transitions.to_string(),
                tier.resilience.orphan_completions.to_string(),
                tier.resilience.hedges.to_string(),
                tier.resilience.cancels_propagated.to_string(),
                tier.resilience.wasted_work_saved.to_string(),
            ]
        })
        .collect();
    files.push((
        "resilience.csv".to_string(),
        to_csv(
            &[
                "tier",
                "name",
                "timeouts",
                "retries",
                "budget_exhausted",
                "shed",
                "breaker_transitions",
                "orphan_completions",
                "hedges",
                "cancels_propagated",
                "wasted_work_saved",
            ],
            &res_rows,
        ),
    ));

    for (i, tier) in report.tiers.iter().enumerate() {
        files.push((
            format!("tier_{i}_{}.csv", sanitize(&tier.name)),
            window_series_csv(
                &tier.queue_depth,
                &tier.drops,
                &tier.vlrt,
                &tier.util,
                &tier.interferer_util,
            ),
        ));
        for r in &tier.replicas {
            files.push((
                format!("tier_{i}_r{}_{}.csv", r.id, sanitize(&tier.name)),
                window_series_csv(
                    &r.queue_depth,
                    &r.drops,
                    &r.vlrt,
                    &r.util,
                    &r.interferer_util,
                ),
            ));
        }
    }

    if let Some(log) = &report.trace {
        let tier_data = report.trace_tier_data();
        let analysis = ntier_trace::RootCause::default().analyze(log, &tier_data);
        files.push(("trace_events.csv".to_string(), ntier_trace::events_csv(log)));
        files.push((
            "trace_chains.csv".to_string(),
            ntier_trace::chains_csv(&analysis, &tier_data),
        ));
    }

    if let Some(log) = &report.control {
        let rows: Vec<Vec<String>> = log
            .decisions
            .iter()
            .map(|d| {
                vec![
                    (d.at.as_micros() as f64 / 1_000.0).to_string(),
                    d.action.tier().map_or(String::new(), |t| t.to_string()),
                    d.action.label(),
                    d.reason.clone(),
                ]
            })
            .collect();
        files.push((
            "control_decisions.csv".to_string(),
            to_csv(&["at_ms", "tier", "action", "reason"], &rows),
        ));
    }

    if let Some(reg) = &report.metrics {
        files.push(("metrics.csv".to_string(), reg.csv()));
    }
    files
}

/// Writes the bundle under `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or file writes.
pub fn write_csv_bundle(report: &RunReport, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, content) in csv_bundle(report) {
        std::fs::write(dir.join(name), content)?;
    }
    Ok(())
}

/// One 50 ms window per row: queue peak, drops, VLRT, own CPU and
/// interferer utilization — used for tier-level files and per-replica files
/// alike, so the two are column-compatible.
fn window_series_csv(
    queue_depth: &WindowedSeries,
    drops: &WindowedSeries,
    vlrt: &WindowedSeries,
    util: &UtilizationSeries,
    interferer_util: &[f64],
) -> String {
    let utils = util.utilizations();
    let windows = queue_depth
        .len()
        .max(drops.len())
        .max(vlrt.len())
        .max(utils.len())
        .max(interferer_util.len());
    let rows: Vec<Vec<String>> = (0..windows)
        .map(|w| {
            vec![
                (w as u64 * ntier_telemetry::MONITOR_WINDOW_MS).to_string(),
                format!("{:.0}", queue_depth.window(w).max),
                format!("{:.0}", drops.window(w).sum),
                format!("{:.0}", vlrt.window(w).sum),
                format!("{:.4}", utils.get(w).copied().unwrap_or(0.0)),
                format!("{:.4}", interferer_util.get(w).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    to_csv(
        &[
            "window_start_ms",
            "queue_peak",
            "drops",
            "vlrt",
            "cpu_util",
            "interferer_util",
        ],
        &rows,
    )
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Workload};
    use crate::{TierSpec, Topology};
    use ntier_des::prelude::*;
    use ntier_workload::RequestMix;

    fn small_report() -> RunReport {
        Engine::new(
            Topology::three_tier(
                TierSpec::sync("Web", 4, 2),
                TierSpec::sync("App", 4, 2),
                TierSpec::sync("Db", 4, 2),
            ),
            Workload::open(
                (0..20).map(|i| SimTime::from_millis(i * 10)).collect(),
                RequestMix::view_story(),
            ),
            SimDuration::from_secs(2),
            1,
        )
        .run()
    }

    #[test]
    fn bundle_has_summary_histogram_and_tier_files() {
        let bundle = csv_bundle(&small_report());
        let names: Vec<&str> = bundle.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "summary.csv",
                "latency_histogram.csv",
                "resilience.csv",
                "tier_0_web.csv",
                "tier_1_app.csv",
                "tier_2_db.csv"
            ]
        );
    }

    #[test]
    fn replicated_tier_appends_per_replica_files() {
        let report = Engine::new(
            Topology::three_tier(
                TierSpec::sync("Web", 4, 2),
                TierSpec::sync("App", 2, 2).replicas(2),
                TierSpec::sync("Db", 4, 2),
            ),
            Workload::open(
                (0..20).map(|i| SimTime::from_millis(i * 10)).collect(),
                RequestMix::view_story(),
            ),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        let names: Vec<String> = csv_bundle(&report).into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "summary.csv",
                "latency_histogram.csv",
                "resilience.csv",
                "tier_0_web.csv",
                "tier_1_app.csv",
                "tier_1_r0_app.csv",
                "tier_1_r1_app.csv",
                "tier_2_db.csv"
            ]
        );
    }

    #[test]
    fn summary_contains_headline_numbers() {
        let report = small_report();
        let bundle = csv_bundle(&report);
        let summary = &bundle[0].1;
        assert!(summary.contains("completed,20"), "{summary}");
        assert!(summary.contains("drops_total,0"));
    }

    #[test]
    fn histogram_rows_sum_to_completed() {
        let report = small_report();
        let bundle = csv_bundle(&report);
        let hist = &bundle[1].1;
        let total: u64 = hist
            .lines()
            .skip(1)
            .filter(|l| !l.starts_with("overflow"))
            .map(|l| l.split(',').nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, report.completed);
    }

    #[test]
    fn resilience_file_is_quiet_without_policies() {
        let bundle = csv_bundle(&small_report());
        let res = &bundle[2].1;
        for line in res.lines().skip(1) {
            let counters: Vec<&str> = line.split(',').skip(2).collect();
            assert!(counters.iter().all(|c| *c == "0"), "{line}");
        }
    }

    #[test]
    fn tier_files_have_consistent_columns() {
        let bundle = csv_bundle(&small_report());
        for (name, content) in bundle.iter().skip(3) {
            let mut lines = content.lines();
            let header = lines.next().unwrap();
            assert_eq!(header.split(',').count(), 6, "{name}");
            for line in lines {
                assert_eq!(line.split(',').count(), 6, "{name}: {line}");
            }
        }
    }

    #[test]
    fn traced_run_appends_trace_files() {
        let report = Engine::new(
            Topology::three_tier(
                TierSpec::sync("Web", 4, 2),
                TierSpec::sync("App", 4, 2),
                TierSpec::sync("Db", 4, 2),
            )
            .with_trace(ntier_trace::TraceConfig::always()),
            Workload::open(
                (0..20).map(|i| SimTime::from_millis(i * 10)).collect(),
                RequestMix::view_story(),
            ),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        let bundle = csv_bundle(&report);
        let names: Vec<&str> = bundle.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            &names[names.len() - 2..],
            ["trace_events.csv", "trace_chains.csv"]
        );
        let events = &bundle[names.len() - 2].1;
        // Every completed request retains a trace under TraceConfig::always.
        assert_eq!(
            events
                .lines()
                .filter(|l| l.contains(",client_send,"))
                .count() as u64,
            report.completed
        );
    }

    #[test]
    fn controlled_run_appends_decision_file() {
        use crate::experiment::{control_frontier, ControlVariant};
        let report = control_frontier(ControlVariant::Damped, 7).run();
        let bundle = csv_bundle(&report);
        let (name, content) = bundle.last().expect("non-empty bundle");
        assert_eq!(name, "control_decisions.csv");
        assert_eq!(
            content.lines().count(),
            report.control.as_ref().unwrap().decisions.len() + 1,
            "one row per decision plus the header"
        );
        assert!(content.contains("scale-up"), "{content}");
        // Uncontrolled runs must not grow the bundle.
        let base = csv_bundle(&control_frontier(ControlVariant::Uncontrolled, 7).run());
        assert!(base.iter().all(|(n, _)| n != "control_decisions.csv"));
    }

    #[test]
    fn health_run_adds_summary_row_and_decision_file() {
        use crate::experiment::{detection_frontier, DetectionVariant};
        let report = detection_frontier(DetectionVariant::Tuned, 7).run();
        let bundle = csv_bundle(&report);
        let summary = &bundle
            .iter()
            .find(|(n, _)| n == "summary.csv")
            .expect("summary always present")
            .1;
        let ejections = report
            .control
            .as_ref()
            .expect("health runs carry a decision log")
            .decisions
            .len();
        assert!(ejections > 0, "the tuned arm must actually eject");
        assert!(
            summary.contains(&format!("health_decisions,{ejections}")),
            "{summary}"
        );
        let (name, content) = bundle.last().expect("non-empty bundle");
        assert_eq!(name, "control_decisions.csv");
        assert!(content.contains("eject(t1#0)"), "{content}");
        // Undetected runs keep the historical summary rows, byte for byte.
        let base = csv_bundle(&detection_frontier(DetectionVariant::Undetected, 7).run());
        let base_summary = &base
            .iter()
            .find(|(n, _)| n == "summary.csv")
            .expect("summary always present")
            .1;
        assert!(!base_summary.contains("health_decisions"), "{base_summary}");
        assert!(base.iter().all(|(n, _)| n != "control_decisions.csv"));
    }

    #[test]
    fn metered_run_appends_metrics_file() {
        let report = Engine::new(
            Topology::three_tier(
                TierSpec::sync("Web", 4, 2),
                TierSpec::sync("App", 4, 2),
                TierSpec::sync("Db", 4, 2),
            )
            .with_metrics(ntier_telemetry::MetricsConfig::every(
                SimDuration::from_millis(500),
            )),
            Workload::open(
                (0..20).map(|i| SimTime::from_millis(i * 10)).collect(),
                RequestMix::view_story(),
            ),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        let bundle = csv_bundle(&report);
        let (name, content) = bundle.last().expect("non-empty bundle");
        assert_eq!(name, "metrics.csv");
        let ticks = report.metrics.as_ref().unwrap().snapshots().len();
        assert!(ticks > 0, "a 2 s run at 500 ms ticks must snapshot");
        assert_eq!(
            content.lines().count(),
            ticks + 1,
            "one row per snapshot plus the header"
        );
        // Unmetered runs must not grow the bundle.
        let base = csv_bundle(&small_report());
        assert!(base.iter().all(|(n, _)| n != "metrics.csv"));
    }

    #[test]
    fn write_bundle_creates_files() {
        let dir = std::env::temp_dir().join(format!("ntier-csv-test-{}", std::process::id()));
        write_csv_bundle(&small_report(), &dir).expect("write bundle");
        assert!(dir.join("summary.csv").exists());
        assert!(dir.join("tier_0_web.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
