//! Per-request execution plans.
//!
//! A [`Plan`] is the compiled form of a request: for every tier in the
//! chain, the *visits* the request makes there, and within each visit the
//! CPU slices interleaved with downstream calls. For a tier-`i` visit with
//! slices `[s0, s1, ..., sk]`, the request executes `s0`, issues a call to
//! tier `i+1` (consuming that tier's next visit), continues with `s1` when
//! the reply arrives, and so on; after the final slice it replies upstream.
//!
//! The 3-tier RUBBoS shape ([`Plan::compile`]) is:
//!
//! * web tier — static requests run one slice and reply; dynamic requests
//!   run a pre slice, call the app tier, then a post slice;
//! * app tier — `queries + 1` slices with one database query between
//!   consecutive slices (the Fig. 14 structure). The *first* slice is
//!   deliberately small (5 % of the app demand): real app servers parse and
//!   dispatch the first query almost immediately, which is what lets a
//!   post-stall batch flood the database (Fig. 9);
//! * db tier — each query is an independent visit with a single slice.
//!
//! Arbitrary-depth chains are built with [`Plan::pipeline`] or
//! [`Plan::from_tier_plans`].

use std::sync::Arc;

use ntier_des::time::SimDuration;
use ntier_workload::{RequestKind, SampledRequest};

use crate::topology::TopologyShape;

/// Fraction of the app demand spent before the first query.
pub const APP_PRE_QUERY_FRACTION: f64 = 0.05;

/// Fraction of the web demand spent before forwarding a dynamic request.
pub const WEB_PRE_FORWARD_FRACTION: f64 = 0.7;

/// The visits one request makes at one tier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TierPlan {
    /// `visits[v]` is the slice list of visit `v`, in arrival order.
    pub visits: Vec<Vec<SimDuration>>,
}

impl TierPlan {
    /// A tier the request never reaches.
    pub fn skipped() -> Self {
        TierPlan::default()
    }

    /// A single visit with the given slices.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is empty (a visit always has at least one slice).
    pub fn single(slices: Vec<SimDuration>) -> Self {
        assert!(!slices.is_empty(), "a visit needs at least one slice");
        TierPlan {
            visits: vec![slices],
        }
    }

    /// Total downstream calls issued from this tier.
    pub fn calls(&self) -> usize {
        self.visits.iter().map(|v| v.len() - 1).sum()
    }

    /// Total CPU demand at this tier.
    pub fn demand(&self) -> SimDuration {
        self.visits
            .iter()
            .flatten()
            .fold(SimDuration::ZERO, |a, b| a + *b)
    }
}

/// The compiled execution plan of one request across the whole chain.
///
/// The tier list is behind an [`Arc`], so cloning a plan (retries, open-plan
/// arrival tables) is a reference-count bump rather than a deep copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    tiers: Arc<[TierPlan]>,
}

impl Plan {
    /// Builds a plan from per-tier visit lists, validating the chain
    /// invariant: the number of calls issued from tier `i` equals the
    /// number of visits at tier `i+1`, and tier 0 is visited exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated or `tiers` is empty.
    pub fn from_tier_plans(tiers: Vec<TierPlan>) -> Plan {
        assert!(!tiers.is_empty(), "a plan needs at least one tier");
        assert_eq!(tiers[0].visits.len(), 1, "tier 0 is visited exactly once");
        for i in 0..tiers.len() - 1 {
            assert_eq!(
                tiers[i].calls(),
                tiers[i + 1].visits.len(),
                "calls from tier {i} must match visits at tier {}",
                i + 1
            );
        }
        assert_eq!(
            tiers.last().expect("non-empty").calls(),
            0,
            "the last tier cannot call further downstream"
        );
        Plan {
            tiers: tiers.into(),
        }
    }

    /// Compiles a RUBBoS-style sampled request into a 3-tier plan.
    pub fn compile(req: &SampledRequest) -> Plan {
        match req.kind {
            RequestKind::Static => Plan {
                tiers: Arc::from(vec![
                    TierPlan::single(vec![req.web_demand]),
                    TierPlan::skipped(),
                    TierPlan::skipped(),
                ]),
            },
            RequestKind::Dynamic => {
                let web_us = req.web_demand.as_micros();
                let pre_web = (web_us as f64 * WEB_PRE_FORWARD_FRACTION).round() as u64;
                let web = TierPlan::single(vec![
                    SimDuration::from_micros(pre_web),
                    SimDuration::from_micros(web_us - pre_web),
                ]);
                let queries = req.db_demands.len();
                let app_us = req.app_demand.as_micros();
                let mut app_slices = Vec::with_capacity(queries + 1);
                if queries == 0 {
                    app_slices.push(req.app_demand);
                } else {
                    let pre = (app_us as f64 * APP_PRE_QUERY_FRACTION).round() as u64;
                    app_slices.push(SimDuration::from_micros(pre));
                    let rest = app_us - pre;
                    let per = rest / queries as u64;
                    for i in 0..queries {
                        // give the remainder to the last slice
                        let d = if i == queries - 1 {
                            rest - per * (queries as u64 - 1)
                        } else {
                            per
                        };
                        app_slices.push(SimDuration::from_micros(d));
                    }
                }
                Plan {
                    tiers: Arc::from(vec![
                        web,
                        TierPlan::single(app_slices),
                        TierPlan {
                            visits: req.db_demands.iter().map(|d| vec![*d]).collect(),
                        },
                    ]),
                }
            }
        }
    }

    /// A depth-`n` pipeline: one visit per tier, one call per tier (except
    /// the last), with the tier's demand split evenly around the call.
    ///
    /// # Panics
    ///
    /// Panics if `demands` is empty.
    pub fn pipeline(demands: &[SimDuration]) -> Plan {
        assert!(!demands.is_empty(), "a pipeline needs at least one tier");
        let n = demands.len();
        let tiers = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if i == n - 1 {
                    TierPlan::single(vec![*d])
                } else {
                    let half = SimDuration::from_micros(d.as_micros() / 2);
                    TierPlan::single(vec![half, *d - half])
                }
            })
            .collect();
        Plan { tiers }
    }

    /// A plan spanning an arbitrary tree [`TopologyShape`]: every node runs
    /// one visit, splitting its demand evenly around its single downstream
    /// call point (fan-out nodes scatter to all children at that point);
    /// leaves run one uninterrupted slice. `demands[i]` is node `i`'s CPU
    /// demand in preorder id order — the tree analogue of
    /// [`Plan::pipeline`].
    ///
    /// # Panics
    ///
    /// Panics if `demands.len() != shape.len()` or the shape is empty.
    pub fn tree_pipeline(shape: &TopologyShape, demands: &[SimDuration]) -> Plan {
        assert!(!shape.is_empty(), "a plan needs at least one tier");
        assert_eq!(
            demands.len(),
            shape.len(),
            "one demand per topology node required"
        );
        let tiers = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if shape.children[i].is_empty() {
                    TierPlan::single(vec![*d])
                } else {
                    let half = SimDuration::from_micros(d.as_micros() / 2);
                    TierPlan::single(vec![half, *d - half])
                }
            })
            .collect();
        Plan { tiers }
    }

    /// Validates this plan against a call-graph shape: the root is visited
    /// once; a single-child node's calls equal its child's visit count; a
    /// fan-out node makes exactly one call (one scatter) and each of its
    /// children is visited exactly once (each arm owns its subtree's
    /// visits); leaves call no further. Chains reduce to the
    /// [`Plan::from_tier_plans`] invariant.
    pub fn matches_shape(&self, shape: &TopologyShape) -> Result<(), String> {
        if self.tiers.len() != shape.len() {
            return Err(format!(
                "plan depth {} does not match the topology's {} nodes",
                self.tiers.len(),
                shape.len()
            ));
        }
        if self.tiers[0].visits.len() != 1 {
            return Err("the root node must be visited exactly once".into());
        }
        for i in 0..self.tiers.len() {
            let kids = &shape.children[i];
            let calls = self.tiers[i].calls();
            match kids.len() {
                0 => {
                    if calls != 0 {
                        return Err(format!("leaf node {i} issues {calls} downstream calls"));
                    }
                }
                1 => {
                    let visits = self.tiers[kids[0]].visits.len();
                    if calls != visits {
                        return Err(format!(
                            "node {i} issues {calls} calls but its child {} has {visits} visits",
                            kids[0]
                        ));
                    }
                }
                _ => {
                    if calls != 1 {
                        return Err(format!(
                            "fan-out node {i} must make exactly one call (one scatter), got {calls}"
                        ));
                    }
                    for &c in kids {
                        let visits = self.tiers[c].visits.len();
                        if visits != 1 {
                            return Err(format!(
                                "scatter arm {c} must be visited exactly once, got {visits}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Shares the underlying tier storage (`Arc` bump, no deep copy).
    /// Identical to [`Clone::clone`]; spelled out for hot-path call sites.
    #[inline]
    pub fn share(&self) -> Plan {
        Plan {
            tiers: Arc::clone(&self.tiers),
        }
    }

    /// A deep copy with every CPU slice multiplied by `factor` — the
    /// structure (visits, call points) is unchanged, only the demands
    /// scale. Used to apply heavy-tailed per-request demand multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Plan {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        let tiers = self
            .tiers
            .iter()
            .map(|t| TierPlan {
                visits: t
                    .visits
                    .iter()
                    .map(|v| {
                        v.iter()
                            .map(|s| {
                                SimDuration::from_micros(
                                    (s.as_micros() as f64 * factor).round() as u64
                                )
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        Plan { tiers }
    }

    /// Number of tiers in the chain.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }

    /// `true` if the request never leaves tier 0.
    pub fn is_static(&self) -> bool {
        self.tiers.len() < 2 || self.tiers[1].visits.is_empty()
    }

    /// Number of visits to the last tier of a 3-tier plan (database
    /// queries); general chains report the last tier's visit count.
    pub fn queries(&self) -> usize {
        self.tiers.last().map(|t| t.visits.len()).unwrap_or(0)
    }

    /// Total CPU demand across all tiers (compilation conserves the sampled
    /// demands).
    pub fn total_demand(&self) -> SimDuration {
        self.tiers
            .iter()
            .fold(SimDuration::ZERO, |a, t| a + t.demand())
    }

    /// Slices of visit `visit` at `tier`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range tier or visit.
    pub fn slices_at(&self, tier: usize, visit: usize) -> &[SimDuration] {
        &self.tiers[tier].visits[visit]
    }

    /// Number of downstream calls made from `tier` across all its visits.
    pub fn calls_from(&self, tier: usize) -> usize {
        self.tiers.get(tier).map(TierPlan::calls).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntier_des::prelude::*;
    use ntier_workload::RequestMix;
    use proptest::prelude::*;

    fn sample(seed: u64) -> SampledRequest {
        let mix = RequestMix::rubbos_browse();
        let mut rng = SimRng::seed_from(seed);
        mix.sample(&mut rng)
    }

    #[test]
    fn static_plan_has_one_web_slice() {
        let req = SampledRequest {
            class: "static",
            kind: RequestKind::Static,
            web_demand: SimDuration::from_micros(200),
            app_demand: SimDuration::ZERO,
            db_demands: vec![],
        };
        let p = Plan::compile(&req);
        assert!(p.is_static());
        assert_eq!(p.slices_at(0, 0), &[SimDuration::from_micros(200)]);
        assert_eq!(p.calls_from(0), 0);
        assert_eq!(p.calls_from(1), 0);
    }

    #[test]
    fn dynamic_plan_structure_matches_fig14() {
        let req = SampledRequest {
            class: "view_story",
            kind: RequestKind::Dynamic,
            web_demand: SimDuration::from_micros(100),
            app_demand: SimDuration::from_micros(1_000),
            db_demands: vec![SimDuration::from_micros(150), SimDuration::from_micros(200)],
        };
        let p = Plan::compile(&req);
        assert_eq!(p.slices_at(0, 0).len(), 2);
        assert_eq!(p.slices_at(1, 0).len(), 3); // pre, between, post
        assert_eq!(p.queries(), 2);
        assert_eq!(p.calls_from(0), 1);
        assert_eq!(p.calls_from(1), 2);
        // first app slice is the small dispatch slice
        assert_eq!(p.slices_at(1, 0)[0], SimDuration::from_micros(50));
        assert_eq!(p.slices_at(2, 1), &[SimDuration::from_micros(200)]);
    }

    #[test]
    fn compilation_conserves_demand() {
        for seed in 0..50 {
            let req = sample(seed);
            let p = Plan::compile(&req);
            let expect = req.web_demand
                + req.app_demand
                + req.db_demands.iter().fold(SimDuration::ZERO, |a, b| a + *b);
            assert_eq!(p.total_demand(), expect, "seed {seed}");
        }
    }

    #[test]
    fn zero_query_dynamic_request_runs_app_once() {
        let req = SampledRequest {
            class: "app_only",
            kind: RequestKind::Dynamic,
            web_demand: SimDuration::from_micros(100),
            app_demand: SimDuration::from_micros(500),
            db_demands: vec![],
        };
        let p = Plan::compile(&req);
        assert_eq!(p.slices_at(1, 0), &[SimDuration::from_micros(500)]);
        assert_eq!(p.calls_from(1), 0);
    }

    #[test]
    fn scaled_multiplies_every_slice_and_keeps_structure() {
        let req = SampledRequest {
            class: "view_story",
            kind: RequestKind::Dynamic,
            web_demand: SimDuration::from_micros(100),
            app_demand: SimDuration::from_micros(1_000),
            db_demands: vec![SimDuration::from_micros(150), SimDuration::from_micros(200)],
        };
        let p = Plan::compile(&req);
        let s = p.scaled(2.0);
        assert_eq!(s.depth(), p.depth());
        assert_eq!(s.queries(), p.queries());
        assert_eq!(s.calls_from(1), p.calls_from(1));
        assert_eq!(
            s.total_demand(),
            SimDuration::from_micros(2 * p.total_demand().as_micros())
        );
        assert_eq!(p.scaled(1.0), p, "identity scale is exact");
    }

    #[test]
    fn pipeline_builds_arbitrary_depths() {
        let p = Plan::pipeline(&[
            SimDuration::from_micros(100),
            SimDuration::from_micros(200),
            SimDuration::from_micros(301),
            SimDuration::from_micros(400),
        ]);
        assert_eq!(p.depth(), 4);
        for i in 0..3 {
            assert_eq!(p.calls_from(i), 1);
        }
        assert_eq!(p.calls_from(3), 0);
        assert_eq!(p.total_demand(), SimDuration::from_micros(1_001));
        // odd demand splits without losing a microsecond
        assert_eq!(
            p.slices_at(2, 0)[0] + p.slices_at(2, 0)[1],
            SimDuration::from_micros(301)
        );
    }

    #[test]
    #[should_panic(expected = "must match visits")]
    fn mismatched_chain_rejected() {
        let _ = Plan::from_tier_plans(vec![
            TierPlan::single(vec![
                SimDuration::from_micros(10),
                SimDuration::from_micros(10),
            ]), // 1 call
            TierPlan {
                visits: vec![
                    vec![SimDuration::from_micros(5)],
                    vec![SimDuration::from_micros(5)],
                ],
            }, // but 2 visits
        ]);
    }

    #[test]
    #[should_panic(expected = "cannot call further downstream")]
    fn dangling_call_rejected() {
        let _ = Plan::from_tier_plans(vec![TierPlan::single(vec![
            SimDuration::from_micros(10),
            SimDuration::from_micros(10),
        ])]);
    }

    #[test]
    fn from_tier_plans_accepts_valid_chains() {
        let p = Plan::from_tier_plans(vec![
            TierPlan::single(vec![
                SimDuration::from_micros(10),
                SimDuration::from_micros(5),
            ]),
            TierPlan::single(vec![
                SimDuration::from_micros(1),
                SimDuration::from_micros(2),
                SimDuration::from_micros(3),
            ]),
            TierPlan {
                visits: vec![
                    vec![SimDuration::from_micros(7)],
                    vec![SimDuration::from_micros(8)],
                ],
            },
        ]);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.calls_from(1), 2);
    }

    #[test]
    fn tree_pipeline_matches_its_shape() {
        // web scatters to two shards; shard 0 has a store below it.
        let shape = TopologyShape {
            children: vec![vec![1, 3], vec![2], vec![], vec![]],
            parent: vec![None, Some(0), Some(1), Some(0)],
            quorum: vec![2, 1, 0, 0],
        };
        let d = |us| SimDuration::from_micros(us);
        let p = Plan::tree_pipeline(&shape, &[d(100), d(200), d(300), d(400)]);
        assert_eq!(p.depth(), 4);
        assert_eq!(p.calls_from(0), 1, "one scatter from the fan-out node");
        assert_eq!(p.calls_from(1), 1);
        assert_eq!(p.calls_from(2), 0);
        assert_eq!(p.total_demand(), d(1_000));
        p.matches_shape(&shape)
            .expect("tree pipeline fits its shape");
        // A linear pipeline also validates against the linear shape.
        let chain = Plan::pipeline(&[d(10), d(20), d(30)]);
        chain
            .matches_shape(&TopologyShape::linear(3))
            .expect("chain fits linear shape");
    }

    #[test]
    fn matches_shape_rejects_multi_call_scatter() {
        let shape = TopologyShape {
            children: vec![vec![1, 2], vec![], vec![]],
            parent: vec![None, Some(0), Some(0)],
            quorum: vec![2, 0, 0],
        };
        let d = |us| SimDuration::from_micros(us);
        // Root with 3 slices = 2 call points: illegal for a fan-out node.
        let p = Plan::from_tier_plans(vec![
            TierPlan::single(vec![d(1), d(2), d(3)]),
            TierPlan {
                visits: vec![vec![d(4)], vec![d(5)]],
            },
            TierPlan::skipped(),
        ]);
        let err = p.matches_shape(&shape).unwrap_err();
        assert!(err.contains("exactly one call"), "{err}");
    }

    proptest! {
        /// Demand conservation holds for arbitrary demands/query counts.
        #[test]
        fn conservation(web in 0u64..10_000, app in 0u64..10_000, dbs in proptest::collection::vec(1u64..5_000, 0..6)) {
            let req = SampledRequest {
                class: "x",
                kind: RequestKind::Dynamic,
                web_demand: SimDuration::from_micros(web),
                app_demand: SimDuration::from_micros(app),
                db_demands: dbs.iter().map(|d| SimDuration::from_micros(*d)).collect(),
            };
            let p = Plan::compile(&req);
            let expect = web + app + dbs.iter().sum::<u64>();
            prop_assert_eq!(p.total_demand(), SimDuration::from_micros(expect));
            prop_assert_eq!(p.slices_at(1, 0).len(), dbs.len() + 1);
        }

        /// Pipelines conserve demand at any depth.
        #[test]
        fn pipeline_conservation(demands in proptest::collection::vec(1u64..10_000, 1..8)) {
            let durations: Vec<SimDuration> = demands.iter().map(|d| SimDuration::from_micros(*d)).collect();
            let p = Plan::pipeline(&durations);
            prop_assert_eq!(p.total_demand(), SimDuration::from_micros(demands.iter().sum()));
            prop_assert_eq!(p.depth(), demands.len());
        }
    }
}
