//! Adapters from raw arrival streams to per-request [`Plan`]s.
//!
//! The workload crate's [`ArrivalSource`]s emit times (plus
//! generator-specific payloads); the engine's streaming path consumes
//! `(time, SourcedRequest)` pairs. The adapters here bridge the two —
//! stamping a fixed plan, sampling a [`RequestMix`], applying heavy-tailed
//! per-request demand, or mapping cluster-trace instances through a demand
//! model — while preserving the source's determinism contract: every draw
//! comes from the rng handed to `next_arrival` (the engine's dedicated
//! `"arrival-source"` fork), and faults propagate unchanged.

use std::collections::HashMap;

use ntier_des::dist::{BoundedPareto, Distribution};
use ntier_des::rng::SimRng;
use ntier_des::time::{SimDuration, SimTime};
use ntier_workload::cluster_trace::TraceInstance;
use ntier_workload::source::ArrivalSource;
use ntier_workload::{RequestKind, RequestMix, SampledRequest};

use crate::plan::Plan;

/// One streamed arrival, ready for injection: the class label (for
/// per-class reporting) and the compiled execution plan.
#[derive(Debug, Clone)]
pub struct SourcedRequest {
    /// Class name, surfaced in [`crate::report::RunReport::classes`].
    pub class: &'static str,
    /// The request's execution plan.
    pub plan: Plan,
}

/// Stamps every arrival from `inner` with one fixed plan — the streaming
/// analogue of the plan tables behind `Workload::open_plans`.
#[derive(Debug)]
pub struct PlanStamped<S> {
    inner: S,
    class: &'static str,
    plan: Plan,
}

impl<S> PlanStamped<S> {
    /// Labels every arrival `class` and gives it (a share of) `plan`.
    pub fn new(inner: S, class: &'static str, plan: Plan) -> Self {
        PlanStamped { inner, class, plan }
    }
}

impl<S: ArrivalSource> ArrivalSource for PlanStamped<S> {
    type Payload = SourcedRequest;

    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<(SimTime, SourcedRequest)> {
        let (t, _) = self.inner.next_arrival(rng)?;
        Some((
            t,
            SourcedRequest {
                class: self.class,
                plan: self.plan.share(),
            },
        ))
    }

    fn fault(&self) -> Option<&str> {
        self.inner.fault()
    }
}

/// Samples a [`RequestMix`] per arrival and compiles the 3-tier plan —
/// the streaming analogue of `Workload::open`. Mix draws consume the same
/// pull rng as the arrival times, so the stream stays deterministic
/// regardless of thread or shard count.
#[derive(Debug)]
pub struct MixPlans<S> {
    inner: S,
    mix: RequestMix,
}

impl<S> MixPlans<S> {
    /// Compiles one `mix` sample per arrival of `inner`.
    pub fn new(inner: S, mix: RequestMix) -> Self {
        MixPlans { inner, mix }
    }
}

impl<S: ArrivalSource> ArrivalSource for MixPlans<S> {
    type Payload = SourcedRequest;

    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<(SimTime, SourcedRequest)> {
        let (t, _) = self.inner.next_arrival(rng)?;
        let req = self.mix.sample(rng);
        Some((
            t,
            SourcedRequest {
                class: req.class,
                plan: Plan::compile(&req),
            },
        ))
    }

    fn fault(&self) -> Option<&str> {
        self.inner.fault()
    }
}

/// Heavy-tailed per-request demand: multiplies every slice of the inner
/// plan by a mean-normalized [`BoundedPareto`] draw, so the *average*
/// offered load is unchanged while individual requests can be up to
/// `hi/mean` times heavier — the "elephant request" ingredient of
/// workload-induced long-tail latency.
#[derive(Debug)]
pub struct ParetoDemand<S> {
    inner: S,
    dist: BoundedPareto,
    inv_mean: f64,
}

impl<S> ParetoDemand<S> {
    /// Scales `inner`'s plans by `BoundedPareto(lo, hi, alpha) / mean`.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds/shape (see [`BoundedPareto::new`]).
    pub fn new(inner: S, lo: f64, hi: f64, alpha: f64) -> Self {
        let dist = BoundedPareto::new(lo, hi, alpha);
        let inv_mean = 1.0 / dist.mean_f64();
        ParetoDemand {
            inner,
            dist,
            inv_mean,
        }
    }
}

impl<S: ArrivalSource<Payload = SourcedRequest>> ArrivalSource for ParetoDemand<S> {
    type Payload = SourcedRequest;

    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<(SimTime, SourcedRequest)> {
        let (t, req) = self.inner.next_arrival(rng)?;
        let factor = self.dist.sample_f64(rng) * self.inv_mean;
        Some((
            t,
            SourcedRequest {
                class: req.class,
                plan: req.plan.scaled(factor),
            },
        ))
    }

    fn fault(&self) -> Option<&str> {
        self.inner.fault()
    }
}

/// Maps cluster-trace instances to 3-tier plans: a ViewStory-shaped
/// template whose app-tier demand scales with the instance's requested
/// CPU relative to `reference_cpu` (clamped to `[0.1, 10]` so a redacted
/// or outlier request cannot produce a degenerate plan). Distinct CPU
/// values are memoized, so replaying a trace whose rows reuse a few dozen
/// `plan_cpu` levels allocates a few dozen plans, not one per arrival.
#[derive(Debug)]
pub struct TraceDemandModel {
    template: SampledRequest,
    reference_cpu: f64,
    cache: HashMap<u64, Plan>,
}

/// Cache at most this many distinct CPU levels (real traces use few).
const TRACE_PLAN_CACHE_CAP: usize = 4_096;

impl TraceDemandModel {
    /// A model with explicit per-tier template demands.
    ///
    /// # Panics
    ///
    /// Panics if `reference_cpu` is not strictly positive and finite.
    pub fn new(
        web: SimDuration,
        app: SimDuration,
        db: SimDuration,
        queries: usize,
        reference_cpu: f64,
    ) -> Self {
        assert!(
            reference_cpu.is_finite() && reference_cpu > 0.0,
            "reference cpu must be positive"
        );
        TraceDemandModel {
            template: SampledRequest {
                class: "trace",
                kind: RequestKind::Dynamic,
                web_demand: web,
                app_demand: app,
                db_demands: vec![db; queries],
            },
            reference_cpu,
            cache: HashMap::new(),
        }
    }

    /// The §V-B ViewStory shape (50 µs web, 750 µs app, 2×150 µs db) with
    /// one requested core as the reference demand.
    pub fn paper_default() -> Self {
        TraceDemandModel::new(
            SimDuration::from_micros(50),
            SimDuration::from_micros(750),
            SimDuration::from_micros(150),
            2,
            1.0,
        )
    }

    /// The plan for one trace instance (memoized per CPU level).
    pub fn plan_for(&mut self, inst: &TraceInstance) -> Plan {
        let key = inst.cpu.to_bits();
        if let Some(p) = self.cache.get(&key) {
            return p.share();
        }
        let scale = (inst.cpu / self.reference_cpu).clamp(0.1, 10.0);
        let req = SampledRequest {
            app_demand: SimDuration::from_secs_f64(self.template.app_demand.as_secs_f64() * scale),
            db_demands: self.template.db_demands.clone(),
            ..self.template.clone()
        };
        let plan = Plan::compile(&req);
        if self.cache.len() < TRACE_PLAN_CACHE_CAP {
            self.cache.insert(key, plan.share());
        }
        plan
    }
}

/// Glues a trace-instance source (e.g.
/// [`ntier_workload::cluster_trace::TraceArrivals`]) to the engine via a
/// [`TraceDemandModel`].
#[derive(Debug)]
pub struct TracePlans<S> {
    inner: S,
    model: TraceDemandModel,
}

impl<S> TracePlans<S> {
    /// Maps `inner`'s instances through `model`.
    pub fn new(inner: S, model: TraceDemandModel) -> Self {
        TracePlans { inner, model }
    }
}

impl<S: ArrivalSource<Payload = TraceInstance>> ArrivalSource for TracePlans<S> {
    type Payload = SourcedRequest;

    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<(SimTime, SourcedRequest)> {
        let (t, inst) = self.inner.next_arrival(rng)?;
        let plan = self.model.plan_for(&inst);
        Some((
            t,
            SourcedRequest {
                class: "trace",
                plan,
            },
        ))
    }

    fn fault(&self) -> Option<&str> {
        self.inner.fault()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntier_workload::source::{materialize, PoissonSource, VecSource};
    use ntier_workload::{Mmpp2, PoissonProcess};

    fn times(n: u64) -> VecSource<()> {
        VecSource::times((1..=n).map(SimTime::from_secs).collect())
    }

    #[test]
    fn plan_stamped_shares_one_plan() {
        let plan = Plan::pipeline(&[SimDuration::from_micros(100), SimDuration::from_micros(200)]);
        let mut src = PlanStamped::new(times(3), "custom", plan.share());
        let mut rng = SimRng::seed_from(1);
        let out = materialize(&mut src, &mut rng);
        assert_eq!(out.len(), 3);
        for (_, req) in &out {
            assert_eq!(req.class, "custom");
            assert_eq!(req.plan, plan);
        }
    }

    #[test]
    fn mix_plans_draws_match_a_manual_replay() {
        let rate = PoissonProcess::new(500.0);
        let horizon = SimDuration::from_secs(4);
        let mut src = MixPlans::new(
            PoissonSource::new(rate, horizon),
            RequestMix::rubbos_browse(),
        );
        let mut rng = SimRng::seed_from(9);
        let out = materialize(&mut src, &mut rng);

        // Replay by hand: same rng, alternating gap draw / mix sample.
        let mix = RequestMix::rubbos_browse();
        let mut replay = SimRng::seed_from(9);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut expected = Vec::new();
        loop {
            t += rate.next_gap(&mut replay);
            if t >= end {
                break;
            }
            let req = mix.sample(&mut replay);
            expected.push((t, req.class, Plan::compile(&req)));
        }
        assert_eq!(out.len(), expected.len());
        for ((t, req), (et, class, plan)) in out.iter().zip(&expected) {
            assert_eq!(t, et);
            assert_eq!(req.class, *class);
            assert_eq!(&req.plan, plan);
        }
    }

    #[test]
    fn pareto_demand_preserves_mean_and_bounds_the_tail() {
        let plan = Plan::pipeline(&[SimDuration::from_micros(500), SimDuration::from_micros(500)]);
        let base = plan.total_demand().as_secs_f64();
        let mut src = ParetoDemand::new(PlanStamped::new(times(20_000), "x", plan), 1.0, 50.0, 1.5);
        let mut rng = SimRng::seed_from(5);
        let out = materialize(&mut src, &mut rng);
        let demands: Vec<f64> = out
            .iter()
            .map(|(_, r)| r.plan.total_demand().as_secs_f64())
            .collect();
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        assert!(
            (mean - base).abs() / base < 0.05,
            "mean demand drifted: {mean} vs {base}"
        );
        let max = demands.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * base, "tail too light: {max}");
        let dist = BoundedPareto::new(1.0, 50.0, 1.5);
        let cap = base * 50.0 / dist.mean_f64() * 1.001;
        assert!(max <= cap, "tail exceeds the bound: {max} > {cap}");
    }

    #[test]
    fn trace_model_scales_with_cpu_and_memoizes() {
        let mut model = TraceDemandModel::paper_default();
        let light = TraceInstance {
            cpu: 0.5,
            duration: SimDuration::from_secs(1),
        };
        let heavy = TraceInstance {
            cpu: 2.0,
            duration: SimDuration::from_secs(1),
        };
        let p_light = model.plan_for(&light);
        let p_heavy = model.plan_for(&heavy);
        assert!(p_heavy.total_demand() > p_light.total_demand());
        // identical cpu → identical shared storage (the memo hit)
        let again = model.plan_for(&light);
        assert_eq!(again, p_light);
        // clamping: absurd cpu stays within 10× of the reference app demand
        let huge = model.plan_for(&TraceInstance {
            cpu: 1e6,
            duration: SimDuration::ZERO,
        });
        assert_eq!(
            huge.total_demand(),
            model
                .plan_for(&TraceInstance {
                    cpu: 10.0,
                    duration: SimDuration::ZERO,
                })
                .total_demand()
        );
    }

    #[test]
    fn adapters_forward_the_inner_fault() {
        #[derive(Debug)]
        struct Faulty;
        impl ArrivalSource for Faulty {
            type Payload = ();
            fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<(SimTime, ())> {
                None
            }
            fn fault(&self) -> Option<&str> {
                Some("bad row")
            }
        }
        let stamped = PlanStamped::new(Faulty, "x", Plan::pipeline(&[SimDuration::from_micros(1)]));
        assert_eq!(stamped.fault(), Some("bad row"));
        let mix = MixPlans::new(Faulty, RequestMix::view_story());
        assert_eq!(mix.fault(), Some("bad row"));
    }

    #[test]
    fn mmpp_through_mix_stays_deterministic() {
        let mk = || {
            MixPlans::new(
                ntier_workload::source::MmppSource::new(
                    Mmpp2::new(400.0, 2_000.0, 1.0, 0.3),
                    SimDuration::from_secs(3),
                ),
                RequestMix::rubbos_browse(),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let out_a = materialize(&mut a, &mut SimRng::seed_from(77));
        let out_b = materialize(&mut b, &mut SimRng::seed_from(77));
        assert_eq!(out_a.len(), out_b.len());
        for ((ta, ra), (tb, rb)) in out_a.iter().zip(&out_b) {
            assert_eq!(ta, tb);
            assert_eq!(ra.class, rb.class);
            assert_eq!(ra.plan, rb.plan);
        }
    }
}
