//! Paper-accurate tier and system presets.
//!
//! Capacities come straight from the paper's text and figures:
//!
//! | Server | Threads/workers | Backlog / LiteQDepth | MaxSysQDepth |
//! |---|---|---|---|
//! | Apache | 150 × 2 processes | 128 | 278 → 428 |
//! | Tomcat | 150 (165 in NX=1) | 128 | 278 / 293 |
//! | MySQL | 100 | 128 | 228 |
//! | Nginx | 4 workers | 65535 | — |
//! | XTomcat | 8 workers | 65535 | — |
//! | XMySQL | 8 InnoDB threads | 2000 | — |
//!
//! The sync Tomcat's JDBC pool to MySQL is 50.

use ntier_des::time::SimDuration;
use ntier_server::{LITE_Q_DEPTH_DEFAULT, LITE_Q_DEPTH_XMYSQL};

use crate::config::{SystemConfig, TierSpec};
use crate::topology::Topology;

/// Apache httpd (prefork): 150 threads per process, up to 2 processes
/// (spawn delay 1 s), backlog 128.
pub fn apache() -> TierSpec {
    TierSpec::sync("Apache", 150, 128).with_process_spawning(2, SimDuration::from_secs(1))
}

/// Tomcat (BIO connector): 150 threads, backlog 128, JDBC pool of 50.
pub fn tomcat() -> TierSpec {
    TierSpec::sync("Tomcat", 150, 128).with_downstream_pool(50)
}

/// The NX=1 Tomcat variant the paper measured at 165 threads
/// (`MaxSysQDepth` 293).
pub fn tomcat_nx1() -> TierSpec {
    TierSpec::sync("Tomcat", 165, 128).with_downstream_pool(50)
}

/// MySQL: 100 threads, backlog 128 (`MaxSysQDepth` 228).
pub fn mysql() -> TierSpec {
    TierSpec::sync("MySQL", 100, 128)
}

/// Nginx: event-driven, 4 workers, `LiteQDepth` 65535.
pub fn nginx() -> TierSpec {
    TierSpec::asynchronous("Nginx", LITE_Q_DEPTH_DEFAULT, 4)
}

/// XTomcat (Tomcat NIO + async MySQL connector): 8 workers,
/// `LiteQDepth` 65535, no connection-pool cap.
pub fn xtomcat() -> TierSpec {
    TierSpec::asynchronous("XTomcat", LITE_Q_DEPTH_DEFAULT, 8)
}

/// XMySQL (InnoDB thread concurrency 8 + wait queue 2000).
pub fn xmysql() -> TierSpec {
    TierSpec::asynchronous("XMySQL", LITE_Q_DEPTH_XMYSQL, 8)
}

/// NX=0: Apache–Tomcat–MySQL, the fully synchronous baseline.
pub fn sync_three_tier() -> SystemConfig {
    Topology::three_tier(apache(), tomcat(), mysql())
}

/// NX=1: Nginx–Tomcat–MySQL (§V-B).
pub fn nx1() -> SystemConfig {
    Topology::three_tier(nginx(), tomcat_nx1(), mysql())
}

/// NX=2: Nginx–XTomcat–MySQL (§V-C).
pub fn nx2() -> SystemConfig {
    Topology::three_tier(nginx(), xtomcat(), mysql())
}

/// NX=3: Nginx–XTomcat–XMySQL (§V-D) — the CTQO-free configuration.
pub fn nx3() -> SystemConfig {
    Topology::three_tier(nginx(), xtomcat(), xmysql())
}

/// The system with `nx` asynchronous tiers (0–3), replaced in the paper's
/// order: web first, then app, then db.
///
/// # Panics
///
/// Panics if `nx > 3`.
pub fn with_nx(nx: usize) -> SystemConfig {
    match nx {
        0 => sync_three_tier(),
        1 => nx1(),
        2 => nx2(),
        3 => nx3(),
        _ => panic!("a 3-tier system admits nx in 0..=3, got {nx}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_the_paper() {
        assert_eq!(apache().max_sys_q_depth(), Some(278));
        assert_eq!(apache().max_sys_q_depth_full(), Some(428));
        assert_eq!(tomcat().max_sys_q_depth(), Some(278));
        assert_eq!(tomcat_nx1().max_sys_q_depth(), Some(293));
        assert_eq!(mysql().max_sys_q_depth(), Some(228));
        assert_eq!(tomcat().downstream_pool, Some(50));
        assert_eq!(xtomcat().downstream_pool, None);
        assert_eq!(nginx().admission_capacity(), 65_535);
        assert_eq!(xmysql().admission_capacity(), 2_000);
    }

    #[test]
    fn nx_ladder() {
        for nx in 0..=3 {
            assert_eq!(with_nx(nx).nx(), nx);
        }
    }

    #[test]
    #[should_panic(expected = "nx in 0..=3")]
    fn nx_over_three_rejected() {
        let _ = with_nx(4);
    }
}
