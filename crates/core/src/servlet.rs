//! The Fig. 14 transformation: a synchronous servlet and its functionally
//! equivalent event-driven form, as executable Rust.
//!
//! The paper's Appendix A shows how `doGet` with two blocking
//! `SyncDBQuery` calls splits into `AsynDBQuery` calls plus callback
//! handlers (`eventHandler1`, `eventHandler2`), following Schneider's
//! transformation rules. This module implements both forms against the same
//! database abstraction so their equivalence is testable:
//!
//! * [`run_sync`] — the Fig. 14(a) control flow: pre-process, query 1,
//!   think, query 2, post-process, respond (the calling thread blocks in
//!   each query);
//! * [`AsyncServlet`] — the Fig. 14(b) state machine: each query submission
//!   returns immediately; the continuation runs when the completion event is
//!   dispatched.
//!
//! # Example
//!
//! ```
//! use ntier_core::servlet::{run_sync, AsyncServlet, EventQueue, SyncDatabase, MapDatabase};
//!
//! let mut db = MapDatabase::new([("q1:alice", "42"), ("q2:42", "ok")]);
//! let sync_response = run_sync(&mut db, "alice");
//!
//! let mut events = EventQueue::default();
//! let mut servlet = AsyncServlet::start("alice", &mut db, &mut events);
//! while let Some(ev) = events.pop() {
//!     servlet.dispatch(ev, &mut db, &mut events);
//! }
//! assert_eq!(servlet.response(), Some(sync_response.as_str()));
//! ```

use std::collections::{HashMap, VecDeque};

/// A blocking database interface (the `SyncDBQuery` side).
pub trait SyncDatabase {
    /// Executes `query` and blocks until the result is available.
    fn query(&mut self, query: &str) -> String;
}

/// A scripted in-memory database for tests and examples.
#[derive(Debug, Clone, Default)]
pub struct MapDatabase {
    answers: HashMap<String, String>,
    /// Queries executed, in order (for asserting equivalent behaviour).
    pub log: Vec<String>,
}

impl MapDatabase {
    /// Builds a database from `(query, answer)` pairs.
    pub fn new<const N: usize>(pairs: [(&str, &str); N]) -> Self {
        MapDatabase {
            answers: pairs
                .iter()
                .map(|(q, a)| (q.to_string(), a.to_string()))
                .collect(),
            log: Vec::new(),
        }
    }
}

impl SyncDatabase for MapDatabase {
    fn query(&mut self, query: &str) -> String {
        self.log.push(query.to_string());
        self.answers
            .get(query)
            .cloned()
            .unwrap_or_else(|| format!("<no row for {query}>"))
    }
}

/// Fig. 14(a): the synchronous servlet. The thread "blocks" in each
/// `db.query` call.
pub fn run_sync(db: &mut impl SyncDatabase, request: &str) -> String {
    // [02] pre-processing request
    let user = request.trim();
    // [03] form query1; [04] result1 = SyncDBQuery1(query1)
    let result1 = db.query(&format!("q1:{user}"));
    // [05] think about result1; [06] form query2
    let key = result1.trim().to_string();
    // [07] result2 = SyncDBQuery2(query2)
    let result2 = db.query(&format!("q2:{key}"));
    // [08] post-processing result2; [09] form response
    format!("user={user} key={key} status={result2}")
}

/// A completion event: the "return" of an `AsynDBQuery`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbCompletion {
    token: u64,
    result: String,
}

/// The event queue standing in for the server's event loop.
#[derive(Debug, Default)]
pub struct EventQueue {
    events: VecDeque<DbCompletion>,
    next_token: u64,
}

impl EventQueue {
    /// Submits an asynchronous query: executes against `db` and enqueues the
    /// completion event (in a real server the execution would overlap with
    /// other work; the ordering semantics are identical).
    pub fn submit(&mut self, db: &mut impl SyncDatabase, query: &str) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let result = db.query(query);
        self.events.push_back(DbCompletion { token, result });
        token
    }

    /// Pops the next completion event.
    pub fn pop(&mut self) -> Option<DbCompletion> {
        self.events.pop_front()
    }

    /// Pending completions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Fig. 14(b): the event-driven servlet as an explicit state machine.
#[derive(Debug)]
pub struct AsyncServlet {
    user: String,
    stage: Stage,
}

#[derive(Debug)]
enum Stage {
    /// Waiting for query 1 (`eventHandler1` will run next).
    AwaitingQuery1 { token: u64 },
    /// Waiting for query 2 (`eventHandler2` will run next).
    AwaitingQuery2 { token: u64, key: String },
    /// Response formed.
    Done { response: String },
}

impl AsyncServlet {
    /// `doGet`: pre-processes the request and issues the first asynchronous
    /// query; returns immediately (the worker thread is not held).
    pub fn start(request: &str, db: &mut impl SyncDatabase, events: &mut EventQueue) -> Self {
        // [02] pre-processing request; [03] form query1 + AsynDBQuery1
        let user = request.trim().to_string();
        let token = events.submit(db, &format!("q1:{user}"));
        AsyncServlet {
            user,
            stage: Stage::AwaitingQuery1 { token },
        }
    }

    /// Dispatches one completion event to the matching handler.
    ///
    /// Events for other servlets (unknown tokens) are ignored, as an event
    /// loop demultiplexing completions would.
    pub fn dispatch(
        &mut self,
        event: DbCompletion,
        db: &mut impl SyncDatabase,
        events: &mut EventQueue,
    ) {
        match &self.stage {
            // eventHandler1: [06] think about result1; [07] form query2 +
            // AsynDBQuery2.
            Stage::AwaitingQuery1 { token } if *token == event.token => {
                let key = event.result.trim().to_string();
                let token2 = events.submit(db, &format!("q2:{key}"));
                self.stage = Stage::AwaitingQuery2 { token: token2, key };
            }
            // eventHandler2: [11] post-processing result2; [12] form
            // response.
            Stage::AwaitingQuery2 { token, key } if *token == event.token => {
                let response = format!("user={} key={key} status={}", self.user, event.result);
                self.stage = Stage::Done { response };
            }
            _ => {}
        }
    }

    /// The response, once formed.
    pub fn response(&self) -> Option<&str> {
        match &self.stage {
            Stage::Done { response } => Some(response),
            _ => None,
        }
    }

    /// `true` once the response is formed.
    pub fn is_done(&self) -> bool {
        matches!(self.stage, Stage::Done { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> MapDatabase {
        MapDatabase::new([
            ("q1:alice", "42"),
            ("q2:42", "ok"),
            ("q1:bob", "7"),
            ("q2:7", "denied"),
        ])
    }

    fn drive(servlet: &mut AsyncServlet, db: &mut MapDatabase, events: &mut EventQueue) {
        while let Some(ev) = events.pop() {
            servlet.dispatch(ev, db, events);
        }
    }

    #[test]
    fn sync_and_async_produce_identical_responses() {
        for user in ["alice", "bob"] {
            let mut db_sync = db();
            let expect = run_sync(&mut db_sync, user);

            let mut db_async = db();
            let mut events = EventQueue::default();
            let mut servlet = AsyncServlet::start(user, &mut db_async, &mut events);
            drive(&mut servlet, &mut db_async, &mut events);

            assert_eq!(servlet.response(), Some(expect.as_str()));
            // same queries in the same order — the transformation preserves
            // the database interaction pattern
            assert_eq!(db_sync.log, db_async.log);
        }
    }

    #[test]
    fn async_servlet_does_not_block_between_events() {
        let mut database = db();
        let mut events = EventQueue::default();
        let servlet = AsyncServlet::start("alice", &mut database, &mut events);
        // start() returned with the response not yet formed: the "thread" is
        // free while query 1 is outstanding.
        assert!(!servlet.is_done());
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn foreign_events_are_ignored() {
        let mut database = db();
        let mut events = EventQueue::default();
        let mut servlet = AsyncServlet::start("alice", &mut database, &mut events);
        servlet.dispatch(
            DbCompletion {
                token: 999,
                result: "garbage".into(),
            },
            &mut database,
            &mut events,
        );
        assert!(!servlet.is_done());
        drive(&mut servlet, &mut database, &mut events);
        assert!(servlet.is_done());
    }

    #[test]
    fn missing_rows_flow_through() {
        let mut database = MapDatabase::default();
        let response = run_sync(&mut database, "ghost");
        assert!(response.contains("<no row for q2:"));
    }

    #[test]
    fn two_servlets_interleave_on_one_event_queue() {
        // The event-driven model's point: one loop, many in-flight requests.
        let mut database = db();
        let mut events = EventQueue::default();
        let mut a = AsyncServlet::start("alice", &mut database, &mut events);
        let mut b = AsyncServlet::start("bob", &mut database, &mut events);
        while let Some(ev) = events.pop() {
            a.dispatch(ev.clone(), &mut database, &mut events);
            b.dispatch(ev, &mut database, &mut events);
        }
        assert_eq!(a.response(), Some("user=alice key=42 status=ok"));
        assert_eq!(b.response(), Some("user=bob key=7 status=denied"));
    }
}
