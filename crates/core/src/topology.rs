//! Call-graph topologies: the typed builder behind every system shape.
//!
//! The paper's systems are linear chains (web → app → db), but the CTQO
//! mechanism — millibottleneck → queue overflow → SYN retransmission — is
//! not chain-specific. This module generalizes the system description to a
//! *tree* of tiers rooted at the client-facing node:
//!
//! * each node may be a **replica set** (N identical instances fronted by a
//!   deterministic [`Balancer`]);
//! * a node's downstream hop may be a **scatter-gather fan-out**: call all
//!   K children, reply upstream when a quorum Q ≤ K of them has answered.
//!
//! Trees (each non-root node has exactly one parent) keep reply routing
//! static and make acyclicity true by construction, which is exactly the
//! property the DES engine's slab/event machinery needs. Nodes are numbered
//! in depth-first preorder, so a chain built through [`Topology::chain`] gets
//! the same indices the old `SystemConfig::chain` produced.
//!
//! [`TopologyBuilder`] validates at build time and returns a typed
//! [`TopologyError`] instead of panicking, per the API-redesign contract.

use crate::config::{SystemConfig, TierSpec};
use std::fmt;

/// How a replica set picks the replica for a fresh connection attempt.
///
/// All policies are deterministic: given the same seed and the same event
/// sequence they pick the same replicas. [`Balancer::P2c`] draws from a
/// dedicated rng fork per node; the others consume no randomness at all.
/// Kernel SYN retransmits bypass the balancer and re-hit the replica the
/// first attempt chose (L4 load balancers pin the 5-tuple), which is what
/// keeps the 3 s / 6 s / 9 s retransmission ladder visible per replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Balancer {
    /// Cycle through replicas in index order.
    #[default]
    RoundRobin,
    /// Pick the replica with the fewest outstanding requests (busy workers
    /// plus backlog); ties break to the lowest index.
    LeastOutstanding,
    /// Power-of-two-choices: draw two distinct replicas uniformly, keep the
    /// less-loaded one.
    P2c,
    /// Join-shortest-queue: pick the replica with the shortest accept
    /// backlog (ignoring busy workers); ties break to the lowest index.
    Jsq,
}

impl Balancer {
    /// Short label for CSV columns and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Balancer::RoundRobin => "round-robin",
            Balancer::LeastOutstanding => "least-outstanding",
            Balancer::P2c => "p2c",
            Balancer::Jsq => "jsq",
        }
    }
}

/// The call-graph shape: who calls whom, and with what quorum.
///
/// Indices are depth-first preorder node ids; node 0 is the client-facing
/// root. The shape is stored alongside the per-node [`TierSpec`]s on
/// [`SystemConfig`], so the engine can look up a node's children and its
/// reply target without re-deriving the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyShape {
    /// `children[i]` — the nodes that node `i` calls downstream.
    pub children: Vec<Vec<usize>>,
    /// `parent[i]` — the node whose call node `i` answers (`None` for the
    /// root).
    pub parent: Vec<Option<usize>>,
    /// `quorum[i]` — replies required before node `i`'s scatter completes.
    /// Meaningful only where `children[i].len() > 1`; single-child and leaf
    /// nodes store `children[i].len()`.
    pub quorum: Vec<usize>,
}

impl TopologyShape {
    /// The shape of a linear chain of `n` tiers.
    pub fn linear(n: usize) -> Self {
        TopologyShape {
            children: (0..n)
                .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
                .collect(),
            parent: (0..n).map(|i| i.checked_sub(1)).collect(),
            quorum: (0..n).map(|i| usize::from(i + 1 < n)).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the shape has no nodes (never true for built systems).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// True when every node has at most one child — the chain special case
    /// the pre-topology engine handled.
    pub fn is_linear(&self) -> bool {
        self.children.iter().all(|c| c.len() <= 1)
    }

    /// True when node `i` scatters to several children.
    pub fn is_fanout(&self, i: usize) -> bool {
        self.children[i].len() > 1
    }

    /// True when any node scatters.
    pub fn has_fanout(&self) -> bool {
        (0..self.len()).any(|i| self.is_fanout(i))
    }
}

/// Why a topology failed to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No tiers at all.
    Empty,
    /// More than 255 nodes — past the [`ntier_des::TierId`] range.
    TooManyTiers { count: usize },
    /// A tier asked for zero replicas.
    ZeroReplicas { tier: String },
    /// A tier asked for more than 255 replicas — past the
    /// [`ntier_des::ReplicaId`] range.
    TooManyReplicas { tier: String, count: usize },
    /// A scatter with quorum 0 can never be waited on meaningfully.
    QuorumZero { tier: String },
    /// Quorum larger than the number of children can never be met.
    QuorumExceedsFanout {
        tier: String,
        quorum: usize,
        fanout: usize,
    },
    /// A downstream connection pool needs exactly one downstream to pool
    /// connections to.
    PoolRequiresSingleChild { tier: String },
    /// Cancellation chases walk a linear chain; combining a cancel policy
    /// with scatter-gather is not supported.
    CancelWithFanout { tier: String },
    /// `tier()` was called after `fanout()` closed the spine.
    TierAfterFanout { tier: String },
    /// `fanout()` was called twice on the spine.
    DoubleFanout,
    /// `fanout()` with no branches.
    EmptyFanout { tier: String },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "a system needs at least one tier"),
            TopologyError::TooManyTiers { count } => {
                write!(f, "{count} tiers exceeds the 255-tier limit")
            }
            TopologyError::ZeroReplicas { tier } => {
                write!(f, "tier {tier} needs at least one replica")
            }
            TopologyError::TooManyReplicas { tier, count } => {
                write!(
                    f,
                    "tier {tier}: {count} replicas exceeds the 255-replica limit"
                )
            }
            TopologyError::QuorumZero { tier } => {
                write!(f, "tier {tier}: scatter quorum must be at least 1")
            }
            TopologyError::QuorumExceedsFanout {
                tier,
                quorum,
                fanout,
            } => write!(
                f,
                "tier {tier}: quorum {quorum} exceeds its fan-out of {fanout}"
            ),
            TopologyError::PoolRequiresSingleChild { tier } => write!(
                f,
                "tier {tier}: a downstream connection pool requires exactly one downstream"
            ),
            TopologyError::CancelWithFanout { tier } => write!(
                f,
                "tier {tier}: cancellation propagation is not supported with scatter-gather fan-out"
            ),
            TopologyError::TierAfterFanout { tier } => write!(
                f,
                "tier {tier}: cannot extend the spine after a fan-out; grow the branches instead"
            ),
            TopologyError::DoubleFanout => {
                write!(f, "the spine already ends in a fan-out")
            }
            TopologyError::EmptyFanout { tier } => {
                write!(f, "tier {tier}: a fan-out needs at least one branch")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// One subtree of a scatter-gather fan-out.
///
/// A branch starts at a tier and grows downward: [`Branch::then`] appends a
/// single downstream hop, [`Branch::fanout`] scatters again. Structural
/// misuse (growing past a fan-out) is recorded and surfaced as a typed
/// error from [`TopologyBuilder::build`], keeping every method infallible
/// at the call site.
#[derive(Debug, Clone)]
pub struct Branch {
    spec: TierSpec,
    children: Vec<Branch>,
    quorum: usize,
    err: Option<TopologyError>,
}

impl Branch {
    /// A branch consisting of a single tier.
    pub fn tier(spec: TierSpec) -> Branch {
        Branch {
            spec,
            children: Vec::new(),
            quorum: 0,
            err: None,
        }
    }

    /// Appends `spec` below the branch's current tail.
    pub fn then(mut self, spec: TierSpec) -> Branch {
        let name = spec.name.clone();
        match self.tail() {
            Some(tail) => tail.children.push(Branch::tier(spec)),
            None => self.note(TopologyError::TierAfterFanout { tier: name }),
        }
        self
    }

    /// Scatters from the branch's current tail to `branches`, gathering
    /// `quorum` replies.
    pub fn fanout(mut self, quorum: usize, branches: Vec<Branch>) -> Branch {
        match self.tail() {
            Some(tail) => {
                tail.quorum = quorum;
                tail.children = branches;
            }
            None => self.note(TopologyError::DoubleFanout),
        }
        self
    }

    /// The deepest node of the linear tail, or `None` if the branch already
    /// ends in a fan-out.
    fn tail(&mut self) -> Option<&mut Branch> {
        let mut cur = self;
        loop {
            match cur.children.len() {
                0 => return Some(cur),
                1 => cur = &mut cur.children[0],
                _ => return None,
            }
        }
    }

    fn note(&mut self, err: TopologyError) {
        if self.err.is_none() {
            self.err = Some(err);
        }
    }

    fn first_err(&self) -> Option<TopologyError> {
        if let Some(e) = &self.err {
            return Some(e.clone());
        }
        self.children.iter().find_map(Branch::first_err)
    }

    /// Preorder-flattens the subtree into `tiers`/`shape`, returning this
    /// node's id.
    fn flatten(&self, tiers: &mut Vec<TierSpec>, shape: &mut TopologyShape) -> usize {
        let id = tiers.len();
        tiers.push(self.spec.clone());
        shape.children.push(Vec::new());
        shape.parent.push(None);
        shape.quorum.push(if self.children.len() > 1 {
            self.quorum
        } else {
            self.children.len()
        });
        for child in &self.children {
            let cid = child.flatten(tiers, shape);
            shape.children[id].push(cid);
            shape.parent[cid] = Some(id);
        }
        id
    }
}

/// Entry points for describing a system: the fluent builder plus the two
/// chain constructors every pre-topology call site used.
pub struct Topology;

impl Topology {
    /// Starts a fluent topology description at the client-facing root.
    ///
    /// ```
    /// use ntier_core::{Balancer, Branch, TierSpec, Topology};
    ///
    /// let sys = Topology::client()
    ///     .tier(TierSpec::sync("apache", 150, 128).replicas(3).balancer(Balancer::P2c))
    ///     .tier(TierSpec::sync("tomcat", 50, 128))
    ///     .fanout(
    ///         1,
    ///         vec![
    ///             Branch::tier(TierSpec::sync("mysql-a", 100, 128)),
    ///             Branch::tier(TierSpec::sync("mysql-b", 100, 128)),
    ///         ],
    ///     )
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(sys.tiers.len(), 4);
    /// assert!(sys.shape.is_fanout(1));
    /// ```
    pub fn client() -> TopologyBuilder {
        TopologyBuilder {
            spine: Vec::new(),
            fan: None,
            err: None,
        }
    }

    /// Builds a linear chain of arbitrary depth (tier 0 is client-facing).
    /// This is the non-deprecated home of the old `SystemConfig::chain`,
    /// with identical semantics.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn chain(tiers: Vec<TierSpec>) -> SystemConfig {
        let mut b = Topology::client();
        for t in tiers {
            b = b.tier(t);
        }
        match b.build() {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the paper's 3-tier system (web, app, db). The non-deprecated
    /// home of the old `SystemConfig::three_tier`.
    pub fn three_tier(web: TierSpec, app: TierSpec, db: TierSpec) -> SystemConfig {
        Topology::chain(vec![web, app, db])
    }
}

/// The fluent builder [`Topology::client`] returns: a linear spine of tiers
/// optionally ending in one scatter-gather fan-out whose branches are
/// themselves trees.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    spine: Vec<TierSpec>,
    fan: Option<(usize, Vec<Branch>)>,
    err: Option<TopologyError>,
}

impl TopologyBuilder {
    /// Appends the next tier of the spine (a single-child hop).
    pub fn tier(mut self, spec: TierSpec) -> Self {
        if self.fan.is_some() {
            self.note(TopologyError::TierAfterFanout {
                tier: spec.name.clone(),
            });
            return self;
        }
        self.spine.push(spec);
        self
    }

    /// Ends the spine with a scatter-gather: the last spine tier calls every
    /// branch and replies upstream once `quorum` branches have answered.
    pub fn fanout(mut self, quorum: usize, branches: Vec<Branch>) -> Self {
        if self.fan.is_some() {
            self.note(TopologyError::DoubleFanout);
            return self;
        }
        self.fan = Some((quorum, branches));
        self
    }

    fn note(&mut self, err: TopologyError) {
        if self.err.is_none() {
            self.err = Some(err);
        }
    }

    /// Validates the description and produces a [`SystemConfig`].
    pub fn build(self) -> Result<SystemConfig, TopologyError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if self.spine.is_empty() {
            return Err(TopologyError::Empty);
        }
        if let Some((_, branches)) = &self.fan {
            if branches.is_empty() {
                return Err(TopologyError::EmptyFanout {
                    tier: self.spine.last().expect("non-empty").name.clone(),
                });
            }
            if let Some(e) = branches.iter().find_map(Branch::first_err) {
                return Err(e);
            }
        }
        // Flatten spine + fan into preorder ids.
        let mut tiers = Vec::new();
        let mut shape = TopologyShape {
            children: Vec::new(),
            parent: Vec::new(),
            quorum: Vec::new(),
        };
        for (i, spec) in self.spine.iter().enumerate() {
            tiers.push(spec.clone());
            shape.children.push(Vec::new());
            shape.parent.push(i.checked_sub(1));
            shape.quorum.push(0); // fixed up below
            if i > 0 {
                shape.children[i - 1].push(i);
                shape.quorum[i - 1] = 1;
            }
        }
        if let Some((quorum, branches)) = &self.fan {
            let fan_node = tiers.len() - 1;
            for branch in branches {
                let cid = branch.flatten(&mut tiers, &mut shape);
                shape.children[fan_node].push(cid);
                shape.parent[cid] = Some(fan_node);
            }
            shape.quorum[fan_node] = if shape.children[fan_node].len() > 1 {
                *quorum
            } else {
                shape.children[fan_node].len()
            };
        }
        validate(&tiers, &shape)?;
        Ok(SystemConfig::from_parts(tiers, shape))
    }
}

/// Structural validation shared by every construction path.
fn validate(tiers: &[TierSpec], shape: &TopologyShape) -> Result<(), TopologyError> {
    if tiers.is_empty() {
        return Err(TopologyError::Empty);
    }
    if tiers.len() > 255 {
        return Err(TopologyError::TooManyTiers { count: tiers.len() });
    }
    let has_fanout = shape.has_fanout();
    for (i, spec) in tiers.iter().enumerate() {
        let tier = || spec.name.clone();
        if spec.replicas == 0 {
            return Err(TopologyError::ZeroReplicas { tier: tier() });
        }
        if spec.replicas > 255 {
            return Err(TopologyError::TooManyReplicas {
                tier: tier(),
                count: spec.replicas,
            });
        }
        let kids = shape.children[i].len();
        if kids > 1 {
            let q = shape.quorum[i];
            if q == 0 {
                return Err(TopologyError::QuorumZero { tier: tier() });
            }
            if q > kids {
                return Err(TopologyError::QuorumExceedsFanout {
                    tier: tier(),
                    quorum: q,
                    fanout: kids,
                });
            }
        }
        if spec.downstream_pool.is_some() && kids != 1 {
            return Err(TopologyError::PoolRequiresSingleChild { tier: tier() });
        }
        if has_fanout
            && spec
                .caller_policy
                .as_ref()
                .is_some_and(|p| p.cancel.is_some())
        {
            return Err(TopologyError::CancelWithFanout { tier: tier() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntier_des::time::SimDuration;
    use ntier_resilience::{CallerPolicy, CancelPolicy};

    fn t(name: &str) -> TierSpec {
        TierSpec::sync(name, 10, 10)
    }

    #[test]
    fn linear_shape_matches_chain_indices() {
        let sys = Topology::chain(vec![t("web"), t("app"), t("db")]);
        assert_eq!(sys.shape, TopologyShape::linear(3));
        assert_eq!(sys.shape.children, vec![vec![1], vec![2], vec![]]);
        assert_eq!(sys.shape.parent, vec![None, Some(0), Some(1)]);
        assert!(sys.shape.is_linear());
        assert!(!sys.shape.has_fanout());
    }

    #[test]
    fn builder_validates_empty() {
        assert_eq!(
            Topology::client().build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn fanout_preorder_numbering_and_quorum() {
        let sys = Topology::client()
            .tier(t("web"))
            .fanout(
                2,
                vec![
                    Branch::tier(t("shard-a")).then(t("store-a")),
                    Branch::tier(t("shard-b")),
                    Branch::tier(t("shard-c")),
                ],
            )
            .build()
            .unwrap();
        let names: Vec<&str> = sys.tiers.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["web", "shard-a", "store-a", "shard-b", "shard-c"]
        );
        assert_eq!(sys.shape.children[0], vec![1, 3, 4]);
        assert_eq!(sys.shape.children[1], vec![2]);
        assert_eq!(sys.shape.quorum[0], 2);
        assert_eq!(sys.shape.parent[3], Some(0));
        assert!(sys.shape.has_fanout());
        assert!(!sys.shape.is_linear());
    }

    #[test]
    fn quorum_must_fit_the_fanout() {
        let err = Topology::client()
            .tier(t("web"))
            .fanout(3, vec![Branch::tier(t("a")), Branch::tier(t("b"))])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::QuorumExceedsFanout {
                tier: "web".into(),
                quorum: 3,
                fanout: 2
            }
        );
        let err = Topology::client()
            .tier(t("web"))
            .fanout(0, vec![Branch::tier(t("a")), Branch::tier(t("b"))])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::QuorumZero { tier: "web".into() });
    }

    #[test]
    fn replica_counts_validated() {
        let err = Topology::client()
            .tier(t("web").replicas(0))
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::ZeroReplicas { tier: "web".into() });
        let err = Topology::client()
            .tier(t("web").replicas(300))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TopologyError::TooManyReplicas { count: 300, .. }
        ));
    }

    #[test]
    fn pool_requires_single_child() {
        let err = Topology::client()
            .tier(t("web").with_downstream_pool(50))
            .fanout(1, vec![Branch::tier(t("a")), Branch::tier(t("b"))])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::PoolRequiresSingleChild { tier: "web".into() }
        );
        // On a leaf, a pool is equally meaningless.
        let err = Topology::client()
            .tier(t("web").with_downstream_pool(50))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::PoolRequiresSingleChild { tier: "web".into() }
        );
    }

    #[test]
    fn cancel_policies_rejected_with_fanout() {
        let policy = CallerPolicy::timeout_only(SimDuration::from_secs(1))
            .with_cancel(CancelPolicy::new(SimDuration::from_micros(50)));
        let err = Topology::client()
            .tier(t("web").with_caller_policy(policy))
            .fanout(1, vec![Branch::tier(t("a")), Branch::tier(t("b"))])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::CancelWithFanout { tier: "web".into() });
    }

    #[test]
    fn spine_cannot_grow_past_a_fanout() {
        let err = Topology::client()
            .tier(t("web"))
            .fanout(1, vec![Branch::tier(t("a")), Branch::tier(t("b"))])
            .tier(t("late"))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::TierAfterFanout {
                tier: "late".into()
            }
        );
    }

    #[test]
    fn branch_misuse_is_surfaced_at_build() {
        let bad = Branch::tier(t("a"))
            .fanout(1, vec![Branch::tier(t("b")), Branch::tier(t("c"))])
            .then(t("late"));
        let err = Topology::client()
            .tier(t("web"))
            .fanout(1, vec![bad, Branch::tier(t("d"))])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::TierAfterFanout {
                tier: "late".into()
            }
        );
    }

    #[test]
    fn nested_branch_fanouts_flatten() {
        let sys = Topology::client()
            .tier(t("gw"))
            .fanout(
                2,
                vec![
                    Branch::tier(t("svc-a"))
                        .fanout(1, vec![Branch::tier(t("db-a1")), Branch::tier(t("db-a2"))]),
                    Branch::tier(t("svc-b")),
                ],
            )
            .build()
            .unwrap();
        assert_eq!(sys.tiers.len(), 5);
        assert_eq!(sys.shape.children[1], vec![2, 3]);
        assert_eq!(sys.shape.quorum[1], 1);
        assert_eq!(sys.shape.parent[4], Some(0));
    }

    #[test]
    #[should_panic(expected = "a system needs at least one tier")]
    fn chain_keeps_legacy_panic() {
        let _ = Topology::chain(vec![]);
    }
}
