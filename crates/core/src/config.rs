//! System configuration: tiers, their server architecture, and capacities.
//!
//! A [`SystemConfig`] describes a call-graph of tiers (the classic case
//! being the 3-tier web → app → db chain). Each tier is either
//! *synchronous* (RPC: thread-per-request, bounded accept backlog,
//! optionally a growable process group) or *asynchronous* (event-driven:
//! large lightweight queue, continuation-based downstream calls), and may
//! be a replica set fronted by a deterministic load balancer. The capacity
//! arithmetic of the paper — `MaxSysQDepth = threads + backlog` vs
//! `LiteQDepth` — is all derivable from this type, see
//! [`TierSpec::max_sys_q_depth`].
//!
//! [`TierSpec`] is the *one* tier description in the workspace: the live
//! testbed's `ChainBuilder` consumes the same type, so there is a single
//! definition of admission capacity across simulator and testbed.

use crate::topology::{Balancer, Topology, TopologyShape};
use ntier_des::time::SimDuration;
use ntier_interference::StallSchedule;
use ntier_net::RetransmitPolicy;
use ntier_resilience::{CallerPolicy, FaultPlan, ShedPolicy};
use ntier_server::ThreadOverheadModel;
use ntier_trace::TraceConfig;

/// The server architecture of one tier.
#[derive(Debug, Clone, PartialEq)]
pub enum TierKind {
    /// RPC-style synchronous server: thread-per-request plus TCP backlog.
    Sync {
        /// Worker threads per process.
        threads: usize,
        /// TCP accept-backlog capacity.
        backlog: usize,
        /// Maximum processes (Apache prefork grows to this; 1 = fixed pool).
        max_processes: usize,
        /// Delay to spawn an additional process.
        spawn_delay: SimDuration,
    },
    /// Event-driven asynchronous server: lightweight queue + small workers.
    Async {
        /// `LiteQDepth` — admission capacity (65535 for Nginx/XTomcat,
        /// 2000 for XMySQL).
        lite_q_depth: usize,
        /// Worker threads/processes (pace CPU, never admission).
        workers: u32,
    },
}

impl TierKind {
    /// `true` for RPC-style tiers.
    pub fn is_sync(&self) -> bool {
        matches!(self, TierKind::Sync { .. })
    }

    /// Short human-readable architecture label.
    pub fn label(&self) -> &'static str {
        match self {
            TierKind::Sync { .. } => "sync",
            TierKind::Async { .. } => "async",
        }
    }
}

/// Configuration of one tier (one node of the call graph). When
/// `replicas > 1` the tier is a replica set: `replicas` identical
/// instances, each with its *own* thread pool / LiteQ, accept backlog,
/// stall schedule and drop accounting, fronted by `balancer`.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Display name ("Apache", "XTomcat", ...).
    pub name: String,
    /// Sync or async architecture.
    pub kind: TierKind,
    /// CPU cores available to each instance's VM.
    pub cores: u32,
    /// Millibottleneck schedule for this tier's CPU. Applies to every
    /// replica unless overridden per replica via
    /// [`TierSpec::with_replica_stalls`].
    pub stalls: StallSchedule,
    /// Connection-pool size used by *this tier's* calls to its downstream
    /// neighbour (`Some(50)` for sync Tomcat's JDBC pool; `None` for async
    /// connectors, which multiplex without a cap, and for the last tier).
    pub downstream_pool: Option<usize>,
    /// Demand inflation at high thread counts (Fig. 12); defaults to none.
    pub overhead: ThreadOverheadModel,
    /// Resilience policy applied by *whoever calls this tier*: for tier 0
    /// that is the client (attempt timeouts + app-level retries); for inner
    /// tiers it replaces the kernel retransmit schedule on drops at this
    /// tier with app-controlled backoff, budget and breaker. `None` keeps
    /// the paper's raw TCP behaviour.
    pub caller_policy: Option<CallerPolicy>,
    /// Admission-time load shedding at this tier (fast reject instead of
    /// queueing); `None` admits per the paper's capacity rules only.
    pub shed: Option<ShedPolicy>,
    /// Number of identical instances behind the balancer (1 = the
    /// unreplicated tier every pre-topology config described).
    pub replicas: usize,
    /// How callers pick a replica for a fresh connection attempt.
    pub balancer: Balancer,
    /// Per-replica stall-schedule overrides as `(replica, schedule)` pairs;
    /// replicas without an entry use `stalls`. This is how one hot replica
    /// is modelled behind an otherwise healthy set.
    pub replica_stalls: Vec<(usize, StallSchedule)>,
}

impl TierSpec {
    /// A synchronous tier with a fixed pool (no process spawning).
    pub fn sync(name: impl Into<String>, threads: usize, backlog: usize) -> Self {
        TierSpec {
            name: name.into(),
            kind: TierKind::Sync {
                threads,
                backlog,
                max_processes: 1,
                spawn_delay: SimDuration::ZERO,
            },
            cores: 1,
            stalls: StallSchedule::none(),
            downstream_pool: None,
            overhead: ThreadOverheadModel::none(),
            caller_policy: None,
            shed: None,
            replicas: 1,
            balancer: Balancer::RoundRobin,
            replica_stalls: Vec::new(),
        }
    }

    /// An asynchronous tier.
    pub fn asynchronous(name: impl Into<String>, lite_q_depth: usize, workers: u32) -> Self {
        TierSpec {
            name: name.into(),
            kind: TierKind::Async {
                lite_q_depth,
                workers,
            },
            cores: 1,
            stalls: StallSchedule::none(),
            downstream_pool: None,
            overhead: ThreadOverheadModel::none(),
            caller_policy: None,
            shed: None,
            replicas: 1,
            balancer: Balancer::RoundRobin,
            replica_stalls: Vec::new(),
        }
    }

    /// Enables process spawning (Apache prefork): up to `max_processes`
    /// processes, each with the configured thread count.
    ///
    /// # Panics
    ///
    /// Panics if the tier is asynchronous.
    pub fn with_process_spawning(mut self, max_processes: usize, spawn_delay: SimDuration) -> Self {
        match &mut self.kind {
            TierKind::Sync {
                max_processes: mp,
                spawn_delay: sd,
                ..
            } => {
                *mp = max_processes;
                *sd = spawn_delay;
            }
            TierKind::Async { .. } => panic!("process spawning applies to sync tiers only"),
        }
        self
    }

    /// Sets the CPU core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the millibottleneck schedule (all replicas).
    pub fn with_stalls(mut self, stalls: StallSchedule) -> Self {
        self.stalls = stalls;
        self
    }

    /// Sets the downstream connection-pool size.
    pub fn with_downstream_pool(mut self, size: usize) -> Self {
        self.downstream_pool = Some(size);
        self
    }

    /// Sets the thread-overhead model.
    pub fn with_overhead(mut self, overhead: ThreadOverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the caller-side resilience policy on the hop into this tier.
    pub fn with_caller_policy(mut self, policy: CallerPolicy) -> Self {
        self.caller_policy = Some(policy);
        self
    }

    /// Sets the admission-time shed policy.
    pub fn with_shed_policy(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// Makes the tier a replica set of `n` identical instances.
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Sets the load-balancing policy callers use to pick a replica.
    pub fn balancer(mut self, balancer: Balancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Overrides the stall schedule of one replica (others keep `stalls`).
    pub fn with_replica_stalls(mut self, replica: usize, stalls: StallSchedule) -> Self {
        self.replica_stalls.retain(|(r, _)| *r != replica);
        self.replica_stalls.push((replica, stalls));
        self
    }

    /// The stall schedule replica `replica` runs under.
    pub fn stalls_for(&self, replica: usize) -> &StallSchedule {
        self.replica_stalls
            .iter()
            .find(|(r, _)| *r == replica)
            .map(|(_, s)| s)
            .unwrap_or(&self.stalls)
    }

    /// `MaxSysQDepth` for a sync tier at its *initial* process count:
    /// `threads + backlog` (278 for Apache, 293 for the NX=1 Tomcat, 228 for
    /// MySQL). Returns `None` for async tiers. Per instance: a replica set
    /// has this much admission capacity per replica.
    pub fn max_sys_q_depth(&self) -> Option<usize> {
        match &self.kind {
            TierKind::Sync {
                threads, backlog, ..
            } => Some(threads + backlog),
            TierKind::Async { .. } => None,
        }
    }

    /// `MaxSysQDepth` with every allowed process spawned (428 for Apache).
    pub fn max_sys_q_depth_full(&self) -> Option<usize> {
        match &self.kind {
            TierKind::Sync {
                threads,
                backlog,
                max_processes,
                ..
            } => Some(threads * max_processes + backlog),
            TierKind::Async { .. } => None,
        }
    }

    /// Admission capacity regardless of architecture: `MaxSysQDepth` or
    /// `LiteQDepth`. Per instance.
    pub fn admission_capacity(&self) -> usize {
        match &self.kind {
            TierKind::Sync {
                threads, backlog, ..
            } => threads + backlog,
            TierKind::Async { lite_q_depth, .. } => *lite_q_depth,
        }
    }
}

/// The old name of [`TierSpec`], kept so pre-topology call sites migrate
/// mechanically.
#[deprecated(note = "renamed to TierSpec; the type is unchanged")]
pub type TierConfig = TierSpec;

/// The whole system: per-node tier specs plus the call-graph shape.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Tier specs in preorder node-id order (a chain reads tier 0 = web,
    /// tier 1 = app, tier 2 = db).
    pub tiers: Vec<TierSpec>,
    /// Who calls whom; [`TopologyShape::linear`] for chains.
    pub shape: TopologyShape,
    /// Client/inter-tier TCP retransmission schedule.
    pub retransmit: RetransmitPolicy,
    /// One-way per-hop message delay.
    pub hop_delay: SimDuration,
    /// Scheduled fault injection; empty by default.
    pub faults: FaultPlan,
    /// Per-request tracing; disabled by default (and strictly free on the
    /// engine hot path while disabled).
    pub trace: TraceConfig,
    /// Closed-loop control plane (autoscaling, policy auto-tuning, overload
    /// governor); `None` by default. Uncontrolled runs take exactly the
    /// pre-control code paths, so their event streams stay bit-identical.
    pub control: Option<ntier_control::ControlConfig>,
    /// Gray-failure detection (passive health scoring + outlier ejection)
    /// on one replicated tier; `None` by default. Undetected runs take
    /// exactly the pre-health code paths — no `HealthTick` events, no rng
    /// fork consumption — so their event streams stay bit-identical.
    pub health: Option<ntier_resilience::HealthPolicy>,
    /// Streaming metrics plane (periodic [`MetricsSnapshot`] emission plus
    /// run-wide latency sketch and bounded ring series); `None` by default.
    /// Unmetered runs take exactly the pre-metrics code paths — no
    /// `MetricsTick` events — so their event streams stay bit-identical,
    /// and the tick itself only *reads* engine state, so enabling it never
    /// perturbs the simulation.
    ///
    /// [`MetricsSnapshot`]: ntier_telemetry::MetricsSnapshot
    pub metrics: Option<ntier_telemetry::MetricsConfig>,
}

impl SystemConfig {
    /// Assembles a config from validated parts — the [`crate::Topology`]
    /// builder's output path. Prefer `Topology::client()...build()?` or
    /// [`Topology::chain`] over calling this directly.
    pub fn from_parts(tiers: Vec<TierSpec>, shape: TopologyShape) -> Self {
        debug_assert_eq!(tiers.len(), shape.len());
        SystemConfig {
            tiers,
            shape,
            retransmit: RetransmitPolicy::default(),
            hop_delay: SimDuration::from_micros(50),
            faults: FaultPlan::none(),
            trace: TraceConfig::disabled(),
            control: None,
            health: None,
            metrics: None,
        }
    }

    /// Builds a 3-tier system (web, app, db).
    #[deprecated(note = "use Topology::three_tier (or the Topology::client builder)")]
    pub fn three_tier(web: TierSpec, app: TierSpec, db: TierSpec) -> Self {
        Topology::three_tier(web, app, db)
    }

    /// Builds a chain of arbitrary depth (tier 0 is client-facing).
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    #[deprecated(note = "use Topology::chain (or the Topology::client builder)")]
    pub fn chain(tiers: Vec<TierSpec>) -> Self {
        Topology::chain(tiers)
    }

    /// Overrides the retransmission policy.
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retransmit = policy;
        self
    }

    /// Overrides the per-hop delay.
    pub fn with_hop_delay(mut self, delay: SimDuration) -> Self {
        self.hop_delay = delay;
        self
    }

    /// Installs a fault-injection plan.
    ///
    /// # Panics
    ///
    /// Panics if any fault targets a tier outside the chain.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        if let Some(max) = faults.max_tier() {
            assert!(
                max < self.tiers.len(),
                "fault targets tier {max} outside the chain"
            );
        }
        self.faults = faults;
        self
    }

    /// Installs a client-side policy (an alias for setting tier 0's caller
    /// policy — the hop into tier 0 is the client's).
    pub fn with_client_policy(mut self, policy: CallerPolicy) -> Self {
        self.tiers[0].caller_policy = Some(policy);
        self
    }

    /// Enables per-request tracing with the given config.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Installs a closed-loop control plane (see [`ntier_control`]).
    ///
    /// # Panics
    ///
    /// Panics if the autoscaler, AIMD tuner, or governor targets a tier
    /// outside the chain.
    pub fn with_control(mut self, control: ntier_control::ControlConfig) -> Self {
        let n = self.tiers.len();
        if let Some(a) = &control.autoscaler {
            assert!(a.tier < n, "autoscaler targets tier {} of {n}", a.tier);
        }
        if let Some(t) = &control.tuner {
            if let Some(a) = &t.aimd {
                assert!(a.tier < n, "AIMD tuner targets tier {} of {n}", a.tier);
            }
        }
        if let Some(g) = &control.governor {
            assert!(
                g.brake_tier < n,
                "governor brakes tier {} of {n}",
                g.brake_tier
            );
        }
        self.control = Some(control);
        self
    }

    /// Installs gray-failure detection on the policy's tier (see
    /// [`ntier_resilience::health`]).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid or targets a tier outside the chain.
    pub fn with_health(mut self, health: ntier_resilience::HealthPolicy) -> Self {
        health.validate();
        let n = self.tiers.len();
        assert!(
            health.tier < n,
            "health detector targets tier {} of {n}",
            health.tier
        );
        self.health = Some(health);
        self
    }

    /// Enables the streaming metrics plane (see
    /// [`ntier_telemetry::metrics`]): periodic snapshots at the config's
    /// interval, collected into the run report and optionally streamed to
    /// a JSONL sink attached via `Engine::with_metrics_sink`.
    pub fn with_metrics(mut self, metrics: ntier_telemetry::MetricsConfig) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Number of asynchronous tiers (the paper's `NX`).
    pub fn nx(&self) -> usize {
        self.tiers.iter().filter(|t| !t.kind.is_sync()).count()
    }

    /// `true` when every tier is synchronous (the CTQO-prone baseline).
    pub fn is_fully_sync(&self) -> bool {
        self.nx() == 0
    }

    /// `true` when every tier is asynchronous (NX=3 — CTQO-free).
    pub fn is_fully_async(&self) -> bool {
        self.nx() == self.tiers.len()
    }

    /// `true` when no tier is replicated and no node fans out — the exact
    /// system class the pre-topology engine simulated.
    pub fn is_plain_chain(&self) -> bool {
        self.shape.is_linear() && self.tiers.iter().all(|t| t.replicas == 1)
    }

    /// The tier index whose stall schedule is non-empty, if exactly one tier
    /// stalls (the common experimental setup). Replica-level overrides count
    /// as that tier stalling.
    pub fn stalled_tier(&self) -> Option<usize> {
        let stalled: Vec<usize> = self
            .tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !t.stalls.is_empty() || t.replica_stalls.iter().any(|(_, s)| !s.is_empty())
            })
            .map(|(i, _)| i)
            .collect();
        match stalled.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntier_des::time::SimTime;

    #[test]
    fn max_sys_q_depth_matches_paper_values() {
        let apache =
            TierSpec::sync("Apache", 150, 128).with_process_spawning(2, SimDuration::from_secs(1));
        assert_eq!(apache.max_sys_q_depth(), Some(278));
        assert_eq!(apache.max_sys_q_depth_full(), Some(428));

        let tomcat_nx1 = TierSpec::sync("Tomcat", 165, 128);
        assert_eq!(tomcat_nx1.max_sys_q_depth(), Some(293));

        let mysql = TierSpec::sync("MySQL", 100, 128);
        assert_eq!(mysql.max_sys_q_depth(), Some(228));

        let nginx = TierSpec::asynchronous("Nginx", 65_535, 4);
        assert_eq!(nginx.max_sys_q_depth(), None);
        assert_eq!(nginx.admission_capacity(), 65_535);
    }

    #[test]
    fn nx_counts_async_tiers() {
        let sys = Topology::three_tier(
            TierSpec::asynchronous("Nginx", 65_535, 4),
            TierSpec::sync("Tomcat", 165, 128),
            TierSpec::sync("MySQL", 100, 128),
        );
        assert_eq!(sys.nx(), 1);
        assert!(!sys.is_fully_sync());
        assert!(!sys.is_fully_async());
        assert!(sys.is_plain_chain());
    }

    #[test]
    fn stalled_tier_requires_exactly_one() {
        let stall = StallSchedule::at_marks([SimTime::from_secs(1)], SimDuration::from_millis(300));
        let mut sys = Topology::three_tier(
            TierSpec::sync("A", 10, 10),
            TierSpec::sync("B", 10, 10).with_stalls(stall.clone()),
            TierSpec::sync("C", 10, 10),
        );
        assert_eq!(sys.stalled_tier(), Some(1));
        sys.tiers[2].stalls = stall;
        assert_eq!(sys.stalled_tier(), None);
    }

    #[test]
    fn replica_stall_overrides_resolve_per_replica() {
        let train = StallSchedule::at_marks([SimTime::from_secs(1)], SimDuration::from_millis(300));
        let spec = TierSpec::sync("Tomcat", 50, 42)
            .replicas(3)
            .with_replica_stalls(1, train.clone());
        assert!(spec.stalls_for(0).is_empty());
        assert_eq!(spec.stalls_for(1), &train);
        assert!(spec.stalls_for(2).is_empty());
        let sys = Topology::chain(vec![TierSpec::sync("web", 10, 10), spec]);
        assert_eq!(sys.stalled_tier(), Some(1));
        assert!(!sys.is_plain_chain());
    }

    #[test]
    #[should_panic(expected = "sync tiers only")]
    fn spawning_on_async_tier_rejected() {
        let _ = TierSpec::asynchronous("Nginx", 100, 1).with_process_spawning(2, SimDuration::ZERO);
    }

    #[test]
    fn deprecated_constructors_still_build_chains() {
        #[allow(deprecated)]
        let sys = SystemConfig::chain(vec![TierSpec::sync("web", 10, 10)]);
        assert_eq!(sys.shape, TopologyShape::linear(1));
    }
}
