//! CTQO detection and classification.
//!
//! The paper names two propagation directions (§VI):
//!
//! * **upstream CTQO** — an *upstream* server drops packets because a
//!   *downstream* server is suffering a millibottleneck (Figs. 3, 5: Tomcat
//!   or MySQL stalls, Apache drops);
//! * **downstream CTQO** — a *downstream* server drops packets because an
//!   upstream (or interacting) server's millibottleneck redirects or batches
//!   load onto it (Figs. 7–9: the stalled tier itself, flooded by an async
//!   upstream, or the database flooded by a post-stall batch).
//!
//! [`detect`] recovers the episodes from a [`RunReport`]: contiguous windows
//! of drops at one tier, classified against the location of the stall.

use ntier_des::time::{SimDuration, SimTime};

use crate::config::SystemConfig;
use crate::report::RunReport;

/// The propagation direction of a CTQO episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtqoClass {
    /// Drops upstream of the stalled tier (push-back through RPC).
    Upstream,
    /// Drops at or downstream of the stalled tier (flood-through).
    Downstream,
    /// Drops with no single stalled tier to attribute to (e.g. plain
    /// overload bursts).
    Unattributed,
}

impl std::fmt::Display for CtqoClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtqoClass::Upstream => write!(f, "upstream CTQO"),
            CtqoClass::Downstream => write!(f, "downstream CTQO"),
            CtqoClass::Unattributed => write!(f, "unattributed drops"),
        }
    }
}

/// One contiguous run of drop windows at a single tier.
#[derive(Debug, Clone, PartialEq)]
pub struct CtqoEpisode {
    /// Tier where the packets dropped.
    pub drop_tier: usize,
    /// Tier whose millibottleneck the episode is attributed to, if any.
    pub stall_tier: Option<usize>,
    /// Start of the first drop window.
    pub start: SimTime,
    /// End of the last drop window.
    pub end: SimTime,
    /// Total packets dropped in the episode.
    pub drops: u64,
    /// Classification.
    pub class: CtqoClass,
}

/// Detects CTQO episodes in a run.
///
/// Drops at tier `d` are grouped into episodes (windows of drops separated
/// by less than `merge_gap`); each episode is classified against the
/// system's stalled tier: `d <` stalled tier ⇒ upstream CTQO, otherwise
/// downstream. Episodes in systems with zero or multiple stalled tiers are
/// `Unattributed`.
pub fn detect(
    report: &RunReport,
    system: &SystemConfig,
    merge_gap: SimDuration,
) -> Vec<CtqoEpisode> {
    let stall_tier = system.stalled_tier();
    let window = SimDuration::from_millis(ntier_telemetry::MONITOR_WINDOW_MS);
    let gap_windows = (merge_gap.as_micros() / window.as_micros()).max(1);
    let mut episodes = Vec::new();
    for (tier_idx, tier) in report.tiers.iter().enumerate() {
        let mut current: Option<CtqoEpisode> = None;
        let mut empty_run = 0u64;
        for (t, agg) in tier.drops.iter() {
            if agg.sum > 0.0 {
                empty_run = 0;
                match &mut current {
                    Some(ep) => {
                        ep.end = t + window;
                        ep.drops += agg.sum as u64;
                    }
                    None => {
                        current = Some(CtqoEpisode {
                            drop_tier: tier_idx,
                            stall_tier,
                            start: t,
                            end: t + window,
                            drops: agg.sum as u64,
                            class: classify(tier_idx, stall_tier),
                        });
                    }
                }
            } else {
                empty_run += 1;
                if empty_run >= gap_windows {
                    if let Some(ep) = current.take() {
                        episodes.push(ep);
                    }
                }
            }
        }
        if let Some(ep) = current.take() {
            episodes.push(ep);
        }
    }
    episodes.sort_by_key(|e| e.start);
    episodes
}

fn classify(drop_tier: usize, stall_tier: Option<usize>) -> CtqoClass {
    match stall_tier {
        Some(s) if drop_tier < s => CtqoClass::Upstream,
        Some(_) => CtqoClass::Downstream,
        None => CtqoClass::Unattributed,
    }
}

/// Convenience: the total drops per class.
pub fn drops_by_class(episodes: &[CtqoEpisode]) -> (u64, u64, u64) {
    let mut up = 0;
    let mut down = 0;
    let mut other = 0;
    for e in episodes {
        match e.class {
            CtqoClass::Upstream => up += e.drops,
            CtqoClass::Downstream => down += e.drops,
            CtqoClass::Unattributed => other += e.drops,
        }
    }
    (up, down, other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TierSpec;
    use crate::engine::{Engine, Workload};
    use crate::topology::Topology;
    use ntier_interference::StallSchedule;
    use ntier_workload::{BurstSchedule, RequestMix};

    fn run_with_stall(stall_tier: usize) -> (RunReport, SystemConfig) {
        let stall =
            StallSchedule::at_marks([SimTime::from_millis(200)], SimDuration::from_millis(600));
        let mut sys = Topology::three_tier(
            TierSpec::sync("Web", 4, 2),
            TierSpec::sync("App", 4, 2).with_downstream_pool(2),
            TierSpec::sync("Db", 4, 2),
        );
        sys.tiers[stall_tier] = sys.tiers[stall_tier].clone().with_stalls(stall);
        let arrivals: Vec<SimTime> = (0..300)
            .map(|i| SimTime::from_millis(100 + i * 2))
            .collect();
        let report = Engine::new(
            sys.clone(),
            Workload::open(arrivals, RequestMix::view_story()),
            SimDuration::from_secs(10),
            1,
        )
        .run();
        (report, sys)
    }

    #[test]
    fn app_stall_in_sync_system_classifies_upstream() {
        let (report, sys) = run_with_stall(1);
        let episodes = detect(&report, &sys, SimDuration::from_secs(1));
        assert!(!episodes.is_empty(), "{}", report.summary());
        let (up, down, other) = drops_by_class(&episodes);
        assert!(
            up > 0,
            "expected upstream drops: up={up} down={down} other={other}"
        );
        // all drops in the tiny sync system land at the web tier
        assert!(episodes.iter().all(|e| e.drop_tier == 0));
        assert!(episodes.iter().all(|e| e.class == CtqoClass::Upstream));
    }

    #[test]
    fn no_stall_classifies_unattributed() {
        let sys = Topology::three_tier(
            TierSpec::sync("Web", 2, 1),
            TierSpec::sync("App", 8, 8),
            TierSpec::sync("Db", 8, 8),
        );
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 30)]);
        let report = Engine::new(
            sys.clone(),
            Workload::open(burst.arrivals(), RequestMix::view_story()),
            SimDuration::from_secs(8),
            1,
        )
        .run();
        let episodes = detect(&report, &sys, SimDuration::from_secs(1));
        assert!(!episodes.is_empty());
        assert!(episodes.iter().all(|e| e.class == CtqoClass::Unattributed));
    }

    #[test]
    fn episodes_merge_within_gap_and_split_beyond() {
        // Two stall marks 3 s apart should create separate episodes when
        // the merge gap is shorter than the quiet period.
        let stall = StallSchedule::at_marks(
            [SimTime::from_millis(200), SimTime::from_millis(3_200)],
            SimDuration::from_millis(600),
        );
        let mut sys = Topology::three_tier(
            TierSpec::sync("Web", 4, 2),
            TierSpec::sync("App", 4, 2).with_downstream_pool(2),
            TierSpec::sync("Db", 4, 2),
        );
        sys.tiers[1] = sys.tiers[1].clone().with_stalls(stall);
        let arrivals: Vec<SimTime> = (0..1900)
            .map(|i| SimTime::from_millis(100 + i * 2))
            .collect();
        let report = Engine::new(
            sys.clone(),
            Workload::open(arrivals, RequestMix::view_story()),
            SimDuration::from_secs(12),
            1,
        )
        .run();
        let split = detect(&report, &sys, SimDuration::from_millis(500));
        let merged = detect(&report, &sys, SimDuration::from_secs(30));
        assert!(split.len() >= 2, "{}", report.summary());
        assert_eq!(merged.len(), 1);
        let total_split: u64 = split.iter().map(|e| e.drops).sum();
        assert_eq!(total_split, merged[0].drops);
        assert_eq!(total_split, report.drops_total);
    }
}

/// A detected millibottleneck: a sub-second run of near-saturated windows
/// on one tier's (physical) CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Millibottleneck {
    /// Tier whose CPU saturated.
    pub tier: usize,
    /// First saturated window.
    pub start: SimTime,
    /// End of the last saturated window.
    pub end: SimTime,
    /// Mean combined utilization across the episode.
    pub mean_util: f64,
}

impl Millibottleneck {
    /// Episode length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Detects millibottlenecks from the 50 ms utilization series: maximal runs
/// of windows with combined (own + interferer) utilization ≥ `min_util`
/// whose total length lies in `[min_duration, max_duration]` — sub-second
/// saturations, not persistent bottlenecks.
///
/// This is the detection side of the paper's micro-level event analysis
/// (and of the millibottleneck papers it builds on): visible at 50 ms
/// granularity, invisible to coarse monitoring (see
/// [`mean_util_at_granularity`]).
pub fn detect_millibottlenecks(
    report: &RunReport,
    min_util: f64,
    min_duration: SimDuration,
    max_duration: SimDuration,
) -> Vec<Millibottleneck> {
    let window = SimDuration::from_millis(ntier_telemetry::MONITOR_WINDOW_MS);
    let mut out = Vec::new();
    for (tier_idx, tier) in report.tiers.iter().enumerate() {
        let combined = tier.combined_util();
        let mut run_start: Option<usize> = None;
        let mut run_sum = 0.0;
        let flush = |out: &mut Vec<Millibottleneck>, start: usize, end: usize, sum: f64| {
            let dur = window * (end - start) as u64;
            if dur >= min_duration && dur <= max_duration {
                out.push(Millibottleneck {
                    tier: tier_idx,
                    start: SimTime::from_micros(start as u64 * window.as_micros()),
                    end: SimTime::from_micros(end as u64 * window.as_micros()),
                    mean_util: sum / (end - start) as f64,
                });
            }
        };
        for (w, u) in combined.iter().enumerate() {
            if *u >= min_util {
                if run_start.is_none() {
                    run_start = Some(w);
                    run_sum = 0.0;
                }
                run_sum += u;
            } else if let Some(s) = run_start.take() {
                flush(&mut out, s, w, run_sum);
            }
        }
        if let Some(s) = run_start.take() {
            flush(&mut out, s, combined.len(), run_sum);
        }
    }
    out.sort_by_key(|m| m.start);
    out
}

/// Paper-standard millibottleneck detection: ≥ 95 % utilization for
/// 100 ms – 2 s.
pub fn detect_millibottlenecks_default(report: &RunReport) -> Vec<Millibottleneck> {
    detect_millibottlenecks(
        report,
        0.95,
        SimDuration::from_millis(100),
        SimDuration::from_secs(2),
    )
}

/// Mean utilization of `tier` re-aggregated at a coarser monitoring
/// granularity — demonstrates why millibottlenecks evade ordinary
/// (second-level or coarser) monitoring: the per-interval means stay
/// moderate even while 50 ms windows saturate.
///
/// Returns the per-interval means.
///
/// # Panics
///
/// Panics if `granularity` is smaller than the 50 ms base window.
pub fn mean_util_at_granularity(
    report: &RunReport,
    tier: usize,
    granularity: SimDuration,
) -> Vec<f64> {
    let window = SimDuration::from_millis(ntier_telemetry::MONITOR_WINDOW_MS);
    assert!(
        granularity >= window,
        "granularity must be at least the base window"
    );
    let per = (granularity.as_micros() / window.as_micros()) as usize;
    let combined = report.tiers[tier].combined_util();
    combined
        .chunks(per)
        .map(|c| c.iter().sum::<f64>() / per as f64)
        .collect()
}

/// One full causal chain of the paper's §I sequence: a millibottleneck,
/// the tiers whose queues filled during it, and the drop episodes it
/// triggered.
#[derive(Debug, Clone)]
pub struct CausalChain {
    /// The originating millibottleneck.
    pub bottleneck: Millibottleneck,
    /// Tiers whose queue peaked at ≥ 90 % of capacity during the episode.
    pub saturated_queues: Vec<usize>,
    /// Drop episodes starting within the bottleneck (+ `slack`).
    pub episodes: Vec<CtqoEpisode>,
}

impl CausalChain {
    /// Total packets dropped along the chain.
    pub fn drops(&self) -> u64 {
        self.episodes.iter().map(|e| e.drops).sum()
    }
}

/// Reconstructs the causal chains of a run: for every detected
/// millibottleneck, the queue saturations and drop episodes within
/// `[start, end + slack]`.
pub fn causal_chains(
    report: &RunReport,
    system: &SystemConfig,
    slack: SimDuration,
) -> Vec<CausalChain> {
    let bottlenecks = detect_millibottlenecks_default(report);
    let episodes = detect(report, system, SimDuration::from_millis(500));
    let window = SimDuration::from_millis(ntier_telemetry::MONITOR_WINDOW_MS);
    bottlenecks
        .into_iter()
        .map(|b| {
            let lo = b.start;
            let hi = b.end + slack;
            let linked: Vec<CtqoEpisode> = episodes
                .iter()
                .filter(|e| e.start >= lo && e.start <= hi)
                .cloned()
                .collect();
            let w_lo = lo.window_index(window) as usize;
            let w_hi = hi.window_index(window) as usize;
            let saturated_queues = report
                .tiers
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    let cap = t.capacity as f64;
                    (w_lo..=w_hi).any(|w| t.queue_depth.window(w).max >= cap * 0.9)
                })
                .map(|(i, _)| i)
                .collect();
            CausalChain {
                bottleneck: b,
                saturated_queues,
                episodes: linked,
            }
        })
        .collect()
}
