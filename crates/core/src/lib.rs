//! # ntier-core — CTQO in n-tier systems: RPC vs. asynchronous invocations
//!
//! A deterministic simulation framework reproducing *"A Study of Long-Tail
//! Latency in n-Tier Systems: RPC vs. Asynchronous Invocations"*
//! (ICDCS 2017). The paper's phenomenon — **Cross-Tier Queue Overflow
//! (CTQO)** — arises when a sub-second *millibottleneck* in one tier of a
//! synchronous RPC chain fills queues across tiers until some tier's
//! `MaxSysQDepth` (thread pool + TCP backlog) overflows, packets drop, and
//! TCP retransmission turns millisecond requests into 3/6/9-second ones.
//!
//! The crate provides:
//!
//! * [`config`] — tier/system configuration (sync vs. async architecture,
//!   pools, backlogs, `LiteQDepth`, replica sets);
//! * [`topology`] — the typed call-graph builder: replicated tiers behind
//!   pluggable load balancers and scatter-gather fan-out with quorums;
//! * [`engine`] — the event-driven simulator of the call graph;
//! * [`presets`] — the paper's server configurations (Apache, Tomcat,
//!   MySQL, Nginx, XTomcat, XMySQL) and the NX=0..3 ladder;
//! * [`experiment`] — ready-made experiment specs for every figure;
//! * [`analysis`] — the CTQO detector (upstream vs. downstream episodes);
//! * [`conditions`] — the paper's §III static/dynamic condition checkers;
//! * [`report`] — run reports with all figure series;
//! * [`servlet`] — the Fig. 14 sync → event-driven servlet transformation
//!   as a miniature executable API.
//!
//! # Quickstart
//!
//! ```
//! use ntier_core::engine::{Engine, Workload};
//! use ntier_core::presets;
//! use ntier_des::prelude::*;
//! use ntier_workload::{ClosedLoopSpec, RequestMix};
//!
//! // The fully synchronous baseline under a small closed-loop workload.
//! let report = Engine::new(
//!     presets::sync_three_tier(),
//!     Workload::closed(ClosedLoopSpec::rubbos(100), RequestMix::rubbos_browse()),
//!     SimDuration::from_secs(10),
//!     7,
//! )
//! .run();
//! assert!(report.is_conserved());
//! ```

pub mod analysis;
pub mod arrivals;
pub mod conditions;
pub mod config;
pub mod csv;
pub mod engine;
pub mod experiment;
pub mod laws;
pub mod plan;
pub mod presets;
pub mod report;
pub mod servlet;
pub mod shard;
pub mod topology;

pub use analysis::{CtqoClass, CtqoEpisode};
pub use arrivals::{
    MixPlans, ParetoDemand, PlanStamped, SourcedRequest, TraceDemandModel, TracePlans,
};
#[allow(deprecated)]
pub use config::TierConfig;
pub use config::{SystemConfig, TierKind, TierSpec};
pub use engine::{Engine, ReplicaGone, Workload, WorkloadError, WorkloadSource};
pub use experiment::ExperimentSpec;
pub use plan::Plan;
pub use report::{ReplicaReport, RunReport, TierReport};
pub use topology::{Balancer, Branch, Topology, TopologyBuilder, TopologyError, TopologyShape};
