//! The paper's §III conditions for millibottlenecks to produce VLRT requests.
//!
//! *Static* conditions describe the system and workload class; *dynamic*
//! conditions are the capacity arithmetic of one millibottleneck: at arrival
//! rate λ and stall duration `d`, `λ·d` requests arrive while the tier can
//! absorb `MaxSysQDepth`; the excess drops. The paper's illustrative
//! example — 1000 req/s × 0.4 s = 400 > 278 = 150 + 128 — is
//! [`DynamicConditions::paper_example`].

use ntier_des::time::SimDuration;

use crate::config::SystemConfig;

/// The four static conditions of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticConditions {
    /// 1) The system is composed of synchronous RPC servers.
    pub all_synchronous: bool,
    /// 2) The workload is bursty.
    pub bursty_workload: bool,
    /// 3) Requests are short (milliseconds).
    pub short_requests: bool,
    /// 4) All servers run at moderate average utilization.
    pub moderate_utilization: bool,
}

impl StaticConditions {
    /// Evaluates the static conditions for a system + workload description.
    ///
    /// * `mean_demand_secs` — mean end-to-end CPU demand of one request;
    ///   "short" means under 10 ms.
    /// * `burst_index` — index of dispersion of windowed arrivals; "bursty"
    ///   means > 1 (super-Poisson).
    /// * `peak_mean_util` — highest per-tier mean utilization; "moderate"
    ///   means under 90 % (no persistent bottleneck).
    pub fn evaluate(
        system: &SystemConfig,
        mean_demand_secs: f64,
        burst_index: f64,
        peak_mean_util: f64,
    ) -> Self {
        StaticConditions {
            all_synchronous: system.is_fully_sync(),
            bursty_workload: burst_index > 1.0,
            short_requests: mean_demand_secs < 0.010,
            moderate_utilization: peak_mean_util < 0.90,
        }
    }

    /// `true` when every condition holds — CTQO is then reachable.
    pub fn all_hold(&self) -> bool {
        self.all_synchronous
            && self.bursty_workload
            && self.short_requests
            && self.moderate_utilization
    }
}

/// The dynamic (per-millibottleneck) conditions of §III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConditions {
    /// Arrival rate at the overflowing tier, requests per second.
    pub arrival_rate: f64,
    /// Millibottleneck duration.
    pub stall: SimDuration,
    /// Queueable capacity of the overflowing tier (`MaxSysQDepth`).
    pub capacity: usize,
}

impl DynamicConditions {
    /// Creates the condition set.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_rate` is not positive/finite.
    pub fn new(arrival_rate: f64, stall: SimDuration, capacity: usize) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        DynamicConditions {
            arrival_rate,
            stall,
            capacity,
        }
    }

    /// The paper's worked example: 1000 req/s, 0.4 s stall, 150 + 128 slots.
    pub fn paper_example() -> Self {
        DynamicConditions::new(1_000.0, SimDuration::from_millis(400), 278)
    }

    /// Requests arriving during the stall: `λ·d`.
    pub fn arrivals_during_stall(&self) -> f64 {
        self.arrival_rate * self.stall.as_secs_f64()
    }

    /// Expected requests beyond capacity (`max(0, λ·d − MaxSysQDepth)`).
    pub fn expected_excess(&self) -> f64 {
        (self.arrivals_during_stall() - self.capacity as f64).max(0.0)
    }

    /// `true` when drops are expected.
    pub fn drops_expected(&self) -> bool {
        self.arrivals_during_stall() > self.capacity as f64
    }

    /// The shortest stall that overflows at this arrival rate.
    pub fn critical_stall(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.capacity as f64 / self.arrival_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn paper_example_overflows_by_122() {
        let d = DynamicConditions::paper_example();
        assert_eq!(d.arrivals_during_stall(), 400.0);
        assert!(d.drops_expected());
        assert_eq!(d.expected_excess(), 122.0);
    }

    #[test]
    fn critical_stall_is_the_break_even_point() {
        let d = DynamicConditions::new(1_000.0, SimDuration::from_millis(400), 278);
        assert_eq!(d.critical_stall(), SimDuration::from_millis(278));
        let below = DynamicConditions::new(1_000.0, SimDuration::from_millis(278), 278);
        assert!(!below.drops_expected());
        let above = DynamicConditions::new(1_000.0, SimDuration::from_millis(279), 278);
        assert!(above.drops_expected());
    }

    #[test]
    fn static_conditions_for_the_baseline() {
        let s = StaticConditions::evaluate(&presets::sync_three_tier(), 0.0011, 30.0, 0.43);
        assert!(s.all_hold());
    }

    #[test]
    fn async_system_breaks_condition_one() {
        let s = StaticConditions::evaluate(&presets::nx3(), 0.0011, 30.0, 0.83);
        assert!(!s.all_synchronous);
        assert!(!s.all_hold());
        // ...but the other three still hold at 83 % utilization.
        assert!(s.bursty_workload && s.short_requests && s.moderate_utilization);
    }

    #[test]
    fn saturation_breaks_condition_four() {
        let s = StaticConditions::evaluate(&presets::sync_three_tier(), 0.0011, 30.0, 0.97);
        assert!(!s.moderate_utilization);
    }
}
