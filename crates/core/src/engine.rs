//! The n-tier simulation engine.
//!
//! Wires the substrates together: workload generators inject requests; each
//! request walks the call graph according to its [`Plan`]; tiers admit
//! messages through thread pools + backlogs (sync) or lightweight queues
//! (async); CPUs execute slices around stall intervals; overflowing a tier
//! drops the message and arms the TCP retransmission timer. Every mutation
//! records into the telemetry series that regenerate the paper's figures.
//!
//! # Semantics (see DESIGN.md §5)
//!
//! * A **sync** tier thread is held for the full downstream round trip; a
//!   tier with a configured connection pool additionally caps its
//!   outstanding downstream calls (the sync Tomcat→MySQL JDBC pool of 50).
//! * An **async** tier admits into its lightweight queue regardless of
//!   worker availability; downstream calls are continuations and no thread
//!   is held.
//! * A message arriving at a full sync tier (all threads busy *and* backlog
//!   full) is dropped; the sender retransmits per the configured policy
//!   (default: +3 s per attempt, the RHEL 6.3 behaviour).
//!
//! # Topologies (see DESIGN.md §12)
//!
//! The system is a *tree* of tiers described by [`crate::Topology`]. Beyond
//! the paper's linear chains:
//!
//! * A tier with `replicas > 1` is a **replica set**: each instance has its
//!   own thread pool / LiteQ, backlog, CPU (with per-replica stall
//!   overrides) and drop accounting. A fresh connection attempt picks a
//!   replica through the tier's deterministic [`Balancer`]; kernel SYN
//!   retransmits re-hit the *same* replica (an L4 balancer pins the
//!   5-tuple), which keeps the 3 s / 6 s / 9 s ladder attached to the
//!   replica that dropped.
//! * A node with several children is a **scatter-gather fan-out**: its
//!   single call point launches one *arm* sub-request per child, and the
//!   node resumes once the configured quorum of arms has replied. Arms that
//!   can no longer form a quorum fail the parent; late arms run to
//!   completion and their replies land on stale handles harmlessly.
//!
//! Chains of any depth ≥ 1 remain the common case: the paper's 3-tier
//! experiments use [`crate::presets`]; deeper chains (and per-request custom
//! plans) use [`crate::Topology::chain`] with [`Workload::open_plans`].
//!
//! # Example
//!
//! ```
//! use ntier_core::engine::{Engine, Workload};
//! use ntier_core::presets;
//! use ntier_des::prelude::*;
//! use ntier_workload::{ClosedLoopSpec, RequestMix};
//!
//! let system = presets::sync_three_tier();
//! let workload = Workload::Closed {
//!     spec: ClosedLoopSpec::rubbos(200),
//!     mix: RequestMix::rubbos_browse(),
//! };
//! let report = Engine::new(system, workload, SimDuration::from_secs(10), 1).run();
//! assert!(report.is_conserved());
//! ```

use std::collections::HashMap;

use ntier_control::{Action, ControlLog, Controller, Directive, Observation, ReplicaObs, TierObs};
use ntier_des::prelude::*;
use ntier_des::shard::ShardedQueue;
use ntier_net::{Backlog, RetransmitState, RetryDecision};
use ntier_resilience::{
    AimdLimiter, CircuitBreaker, Fault, HealthDetector, HealthVerdict, HedgeDelay, ResilienceStats,
    ShedPolicy, TokenBucket,
};
use ntier_server::conn_pool::Lease;
use ntier_server::{ConnectionPool, CpuModel, EventLoop, ProcessGroup, StallTimeline};
use ntier_telemetry::metrics::{MetricsSample, ReplicaSample, TierSample};
use ntier_telemetry::{
    LatencyHistogram, MetricsRegistry, QuantileSketch, UtilizationSeries, WindowedSeries,
};
use ntier_trace::{TerminalClass, TraceEventKind, TraceHandle, Tracer, TRACE_NONE};
use ntier_workload::source::ArrivalSource;
use ntier_workload::{ClosedLoopSpec, RequestMix};

use crate::arrivals::SourcedRequest;
use crate::config::{SystemConfig, TierKind, TierSpec};
use crate::plan::Plan;
use crate::report::{ClassReport, DropRecord, ReplicaReport, RunReport, TierReport};
use crate::shard::ShardPlan;
use crate::topology::Balancer;

/// The workload driving a run.
///
/// Construct workloads through the builders — [`Workload::closed`],
/// [`Workload::open`], [`Workload::open_plans`], [`Workload::from_source`] —
/// rather than naming variants directly. The materialized `Open`/`OpenPlans`
/// variants hold every arrival in memory up front and are deprecated as
/// construction targets; [`Workload::from_source`] streams arrivals on
/// demand, keeping memory proportional to the *active* request population.
pub enum Workload {
    /// Closed-loop clients (RUBBoS style): each completes, thinks, resends.
    /// Requires a 3-tier system (plans come from the request mix).
    Closed {
        /// Client population and think-time distribution.
        spec: ClosedLoopSpec,
        /// Request classes.
        mix: RequestMix,
    },
    /// Open-loop: requests injected at the given (pre-generated) times.
    /// Requires a 3-tier system.
    #[deprecated(
        since = "0.2.0",
        note = "construct via Workload::open(..), or stream with Workload::from_source(..)"
    )]
    Open {
        /// Sorted injection times.
        arrivals: Vec<SimTime>,
        /// Request classes.
        mix: RequestMix,
    },
    /// Open-loop with explicit per-request plans — supports chains of any
    /// depth (the plan depth must equal the system depth).
    #[deprecated(
        since = "0.2.0",
        note = "construct via Workload::open_plans(..), or stream with Workload::from_source(..)"
    )]
    OpenPlans {
        /// `(injection time, plan)` pairs.
        arrivals: Vec<(SimTime, Plan)>,
    },
    /// Streaming arrivals pulled lazily from an [`ArrivalSource`] (built
    /// with [`Workload::from_source`]): the engine holds at most one
    /// pending arrival, so memory is O(active requests) no matter how many
    /// arrivals the source ultimately emits.
    Source(WorkloadSource),
}

/// A boxed streaming arrival source (opaque in debug output).
///
/// All of the source's randomness — arrival gaps, mix samples, demand
/// multipliers — is drawn from the engine's dedicated `"arrival-source"`
/// rng fork at pull time, on the single thread driving the event loop, so
/// streamed runs stay bit-identical across runner thread counts and engine
/// shard counts.
pub struct WorkloadSource(Box<dyn ArrivalSource<Payload = SourcedRequest> + Send>);

impl std::fmt::Debug for WorkloadSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WorkloadSource(..)")
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[allow(deprecated)]
        match self {
            Workload::Closed { spec, mix } => f
                .debug_struct("Closed")
                .field("spec", spec)
                .field("mix", mix)
                .finish(),
            Workload::Open { arrivals, mix } => f
                .debug_struct("Open")
                .field("arrivals", arrivals)
                .field("mix", mix)
                .finish(),
            Workload::OpenPlans { arrivals } => f
                .debug_struct("OpenPlans")
                .field("arrivals", arrivals)
                .finish(),
            Workload::Source(s) => f.debug_tuple("Source").field(s).finish(),
        }
    }
}

impl Workload {
    /// A closed-loop population driving a 3-tier mix.
    pub fn closed(spec: ClosedLoopSpec, mix: RequestMix) -> Workload {
        Workload::Closed { spec, mix }
    }

    /// Open-loop arrivals at pre-generated `arrivals` times, each compiled
    /// from one `mix` sample. The times are materialized eagerly; prefer
    /// [`Workload::from_source`] for long runs.
    #[allow(deprecated)]
    pub fn open(arrivals: Vec<SimTime>, mix: RequestMix) -> Workload {
        Workload::Open { arrivals, mix }
    }

    /// Open-loop arrivals with explicit per-request plans (any chain
    /// depth). The table is materialized eagerly; prefer
    /// [`Workload::from_source`] for long runs.
    #[allow(deprecated)]
    pub fn open_plans(arrivals: Vec<(SimTime, Plan)>) -> Workload {
        Workload::OpenPlans { arrivals }
    }

    /// Streams arrivals lazily from `source`. The engine pulls one arrival
    /// at a time from its `"arrival-source"` rng fork; the source must
    /// emit non-decreasing times and stay exhausted after returning
    /// `None`. A source-reported fault (e.g. a trace parse error) ends the
    /// stream and is surfaced in
    /// [`RunReport::workload_fault`](crate::report::RunReport::workload_fault).
    pub fn from_source(
        source: impl ArrivalSource<Payload = SourcedRequest> + Send + 'static,
    ) -> Workload {
        Workload::Source(WorkloadSource(Box::new(source)))
    }
}

/// Typed rejection of a workload/system pairing — the workload analogue of
/// [`crate::TopologyError`], returned by [`Engine::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A mix-based workload (closed-loop, or open with a request mix) was
    /// paired with a system that is not a plain 3-tier chain, so its
    /// sampled requests cannot compile into plans.
    MixRequiresThreeTier {
        /// Tiers in the offending config.
        tiers: usize,
        /// Whether the config's shape was a linear chain.
        linear: bool,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::MixRequiresThreeTier { tiers, linear } => {
                let shape = if *linear { "linear" } else { "non-linear" };
                write!(
                    f,
                    "mix-based workloads compile 3-tier plans, but the system is a \
                     {shape} topology with {tiers} tiers; use Workload::open_plans or \
                     Workload::from_source for other shapes"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Generational handle into the request slab: `slot` indexes
/// `Engine::requests`, and the handle is *live* only while `gen` matches the
/// slot's current generation. Completed requests are recycled, so events
/// still in the queue for an earlier occupant (a pending `AttemptTimeout`,
/// a retransmit of a request that already gave up) resolve to a stale
/// handle and are ignored — exactly where the old engine checked `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReqId {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    ClientSend {
        client: u32,
    },
    Inject {
        idx: u32,
    },
    Arrival {
        req: ReqId,
        tier: u8,
        visit: u16,
    },
    SliceDone {
        req: ReqId,
        tier: u8,
        visit: u16,
    },
    ReplyArrive {
        req: ReqId,
        tier: u8,
    },
    SpawnDone {
        tier: u8,
        replica: u8,
    },
    /// A scatter arm finished its subtree and replies to the parent request
    /// waiting at the fan-out node. The arm's slot is already recycled by
    /// the time this fires; only the parent handle matters (and it goes
    /// stale harmlessly if the parent failed first).
    ArmReply {
        parent: ReqId,
    },
    /// The client's per-attempt timer fired: orphan the attempt and consult
    /// the retry stack.
    AttemptTimeout {
        req: ReqId,
    },
    /// A granted client retry's backoff elapsed: launch the next attempt of
    /// the logical request described by `tickets[ticket]`. The ticket owns
    /// everything the relaunch needs, so the original attempt's slot may be
    /// recycled in the meantime.
    RetryFire {
        ticket: u32,
    },
    /// A fault window opens / closes (index into the fault plan).
    FaultBegin {
        idx: u16,
    },
    FaultEnd {
        idx: u16,
    },
    /// A hedged caller's backup timer fired: launch the next backup attempt
    /// of logical request `logical`, unless it already resolved (the `lgen`
    /// mismatch catches recycled logical slots).
    HedgeFire {
        logical: u32,
        lgen: u32,
    },
    /// The hedged caller's overall deadline passed: resolve the logical
    /// request as failed (or cancelled, when losing attempts are chased).
    LogicalDeadline {
        logical: u32,
        lgen: u32,
    },
    /// A cancel chasing attempt `req` reaches `tier`: reap the attempt if
    /// its front is here, forward the cancel if it is deeper, drop the
    /// chase if the reply already raced past upstream.
    CancelArrive {
        req: ReqId,
        tier: u8,
    },
    /// The control plane's step-synchronous tick. Scheduled only when the
    /// run has a control config, so uncontrolled event streams (and their
    /// golden fingerprints) stay byte-identical to the pre-control engine.
    ControllerTick,
    /// The gray-failure detector's scoring tick. Scheduled only when the
    /// run has a [`ntier_resilience::HealthPolicy`], so undetected event
    /// streams stay byte-identical to the pre-health engine.
    HealthTick,
    /// A provisioned replica's lag elapsed: it comes online at `tier` and
    /// starts receiving balancer picks on the next fresh connection.
    ReplicaReady {
        tier: u8,
    },
    /// The streaming metrics plane's snapshot tick. Scheduled only when the
    /// run has a [`ntier_telemetry::MetricsConfig`], so unmetered event
    /// streams stay byte-identical to the pre-metrics engine. The handler
    /// only *reads* engine state — it never touches an rng or schedules
    /// anything but its own successor — so even metered runs simulate the
    /// exact same system.
    MetricsTick,
}

/// The engine's event schedule: one flat calendar queue, or — under
/// [`Engine::run_sharded`] — per-shard calendar queues partitioned by the
/// event's home tier and merged back in global `(time, stamp)` order.
///
/// The sharded variant is *bit-identical* to the single queue by
/// construction: [`ShardedQueue`] stamps every push with one global
/// sequence counter and always pops the smallest `(time, stamp)` across
/// shards, which is exactly the single queue's `(time, seq)` order (pinned
/// by `matches_single_queue` in `ntier_des::shard`). Routing therefore
/// only decides *locality* — which shard's calendar a tier's events live
/// on, the partition a conservative-parallel pass over the cut works from
/// (see DESIGN.md §14) — never order.
#[derive(Debug)]
enum EngineQueue {
    Single(EventQueue<Event>),
    Sharded {
        q: ShardedQueue<Event>,
        plan: ShardPlan,
    },
}

impl EngineQueue {
    fn push(&mut self, at: SimTime, ev: Event) {
        match self {
            EngineQueue::Single(q) => q.push(at, ev),
            EngineQueue::Sharded { q, plan } => {
                let shard = Self::home_shard(&ev, plan).min(q.shard_count() - 1);
                q.push(shard, at, ev);
            }
        }
    }

    /// Pops the earliest event and drains the *rest* of its equal-time run
    /// (up to `max` total) into `batch`. Runs of one — the common case —
    /// return without touching `batch` at all.
    fn pop_run(&mut self, batch: &mut Vec<Event>, max: usize) -> Option<(SimTime, Event)> {
        match self {
            EngineQueue::Single(q) => q.pop_run(batch, max),
            EngineQueue::Sharded { q, .. } => {
                let (_, t, ev) = q.pop()?;
                while batch.len() + 1 < max && q.peek_time() == Some(t) {
                    let (_, _, ev2) = q.pop().expect("peeked front");
                    batch.push(ev2);
                }
                Some((t, ev))
            }
        }
    }

    /// The shard whose calendar holds `ev`: tier-addressed events live with
    /// their tier, everything client-side (injection, client timers, retry
    /// backoffs, hedges, faults, the controller) with the root's shard 0.
    fn home_shard(ev: &Event, plan: &ShardPlan) -> usize {
        match ev {
            Event::Arrival { tier, .. }
            | Event::SliceDone { tier, .. }
            | Event::ReplyArrive { tier, .. }
            | Event::SpawnDone { tier, .. }
            | Event::CancelArrive { tier, .. }
            | Event::ReplicaReady { tier } => plan.shard_of_tier(*tier as usize),
            Event::ClientSend { .. }
            | Event::Inject { .. }
            | Event::ArmReply { .. }
            | Event::AttemptTimeout { .. }
            | Event::RetryFire { .. }
            | Event::FaultBegin { .. }
            | Event::FaultEnd { .. }
            | Event::HedgeFire { .. }
            | Event::LogicalDeadline { .. }
            | Event::ControllerTick
            | Event::HealthTick
            | Event::MetricsTick => 0,
        }
    }

    /// Events ever scheduled on this queue (the global stamp counter).
    /// `scheduled_total() - events_handled` is the calendar occupancy — a
    /// read that, unlike a raw queue length, is invariant across shard
    /// counts and the hot path's equal-time batch pre-pops.
    fn scheduled_total(&self) -> u64 {
        match self {
            EngineQueue::Single(q) => q.scheduled_total(),
            EngineQueue::Sharded { q, .. } => q.scheduled_total(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: ReqId,
    visit: u16,
}

/// Everything needed to launch the next client attempt of a logical
/// request, captured when the retry is *granted*: by the time the backoff
/// elapses, the previous attempt's slab slot may already belong to someone
/// else.
#[derive(Debug)]
struct RetryTicket {
    injected_at: SimTime,
    client: Option<u32>,
    class: &'static str,
    plan: Plan,
    /// 0-based attempt index of the attempt this ticket launches.
    attempt: u32,
    /// The logical request's trace; the ticket holds a reference across the
    /// backoff and hands it to the relaunched attempt.
    trace: TraceHandle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occupancy {
    None,
    Thread,
    Admission,
}

/// Sentinel for "this attempt belongs to no hedged logical request".
const LOGICAL_NONE: u32 = u32::MAX;

/// Cap on events applied per same-timestamp batch drain in [`Engine::run`]
/// (bounds the reusable batch buffer; order is unaffected).
const EVENT_BATCH: usize = 64;

/// One *logical* request under a hedged caller: the primary attempt plus up
/// to K backups race down the chain; the first completion wins and the
/// losers are orphaned (and, with a [`ntier_resilience::CancelPolicy`],
/// chased down and reaped). Slots are recycled through
/// `Engine::free_logicals`; `gen` invalidates stale `HedgeFire` /
/// `LogicalDeadline` events exactly like [`ReqId::gen`] does for requests.
#[derive(Debug)]
struct LogicalState {
    gen: u32,
    /// A winner completed or the deadline passed; later attempt outcomes
    /// are orphan completions / silent reaps.
    resolved: bool,
    /// Live attempt handles (winner/losers are unlinked as they terminate).
    attempts: Vec<ReqId>,
    /// Backup attempts launched so far (excludes the primary).
    hedges_launched: u32,
    injected_at: SimTime,
    client: Option<u32>,
    class: &'static str,
    plan: Plan,
    /// The logical request's trace. The logical slot owns one reference;
    /// every attempt retains it, so hedge races append into one timeline.
    trace: TraceHandle,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassStats {
    completed: u64,
    vlrt: u64,
    drops: u64,
    shed: u64,
    latency_sum_us: u128,
}

/// Inline capacity of a [`DropLog`]. The kernel retransmit schedule caps at
/// 3 retries, so the overwhelming majority of requests that drop at all fit
/// inline; only pathological app-level retry loops spill to the heap.
const DROP_INLINE: usize = 4;

/// Small-buffer drop history for one request: the first [`DROP_INLINE`]
/// records live inline in the request slab, so the per-request `Vec`
/// allocation the old engine paid on every first drop is gone.
#[derive(Debug)]
struct DropLog {
    inline: [DropRecord; DROP_INLINE],
    len: usize,
    spill: Vec<DropRecord>,
}

impl DropLog {
    fn new() -> Self {
        DropLog {
            inline: [DropRecord {
                tier: 0,
                replica: ReplicaId::FIRST,
                at: SimTime::ZERO,
            }; DROP_INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, rec: DropRecord) {
        if self.len < DROP_INLINE {
            self.inline[self.len] = rec;
        } else {
            self.spill.push(rec);
        }
        self.len += 1;
    }

    /// Iterates the full drop history in push order: the inline records
    /// first, then the heap spill (drops past [`DROP_INLINE`]).
    fn iter(&self) -> impl Iterator<Item = DropRecord> + '_ {
        self.inline[..self.len.min(DROP_INLINE)]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

#[derive(Debug)]
struct RequestState {
    injected_at: SimTime,
    client: Option<u32>,
    class: &'static str,
    plan: Plan,
    /// Index of the slice being (or about to be) executed, per tier.
    slice_idx: Vec<usize>,
    /// The visit currently active at each tier.
    active_visit: Vec<u16>,
    /// The next downstream visit index to consume, per tier.
    next_visit: Vec<u16>,
    retrans: RetransmitState,
    drops: DropLog,
    occupying: Vec<Occupancy>,
    /// Whether this request currently holds a pooled connection at tier i.
    conn_held: Vec<bool>,
    /// 0-based client attempt index (retries clone the plan with +1).
    attempt: u32,
    /// App-level retries of the current in-flight message (inner-hop caller
    /// policies); reset on successful admission like `retrans`.
    hop_attempts: u32,
    /// Index into `Engine::logicals` when this attempt belongs to a hedged
    /// logical request; [`LOGICAL_NONE`] otherwise.
    logical: u32,
    /// When the in-flight message was admitted at each tier (backlog entry
    /// or visit start) — feeds the AIMD limiter's latency samples.
    arrived_at: Vec<SimTime>,
    /// The replica the balancer chose at each tier for the current
    /// in-flight message. Kernel SYN retransmits reuse this pin (L4
    /// 5-tuple affinity); fresh sends and app-level retries re-pick.
    replica: Vec<u8>,
    /// `Some(parent)` when this request is one *arm* of `parent`'s
    /// scatter-gather fan-out: it never counts in the run totals, and its
    /// terminal outcome feeds the parent's quorum instead of a client.
    arm_parent: Option<ReqId>,
    /// The child node this arm's subtree is rooted at (meaningful only
    /// with `arm_parent`); finishing its visit there replies to the parent.
    arm_root: u8,
    /// Arm replies still needed before this request's scatter completes
    /// (0 = no scatter outstanding / quorum already met).
    fan_awaiting: u32,
    /// Arms still able to reply; dropping below `fan_awaiting` makes the
    /// quorum unreachable and fails the request.
    fan_live: u32,
    /// The node this request's scatter was issued from.
    fan_node: u8,
    /// The attempt's trace handle ([`TRACE_NONE`] when tracing is off).
    /// Shared with the logical slot and retry ticket via refcounts.
    trace: TraceHandle,
}

/// The per-slot request fields the dispatch hot path touches, split out of
/// [`RequestState`] structure-of-arrays style: the generation check in
/// [`Engine::live`] runs on nearly every event pop, and `head`/`orphan`
/// flip on the timeout/cancel/hedge paths. A [`RequestState`] is several
/// cache lines of mostly cold plan/telemetry data; packing the hot triple
/// into 8 bytes keeps ~8 slots' liveness state per cache line instead of
/// one.
#[derive(Debug, Clone, Copy)]
struct HotSlot {
    /// Slot generation; a [`ReqId`] is live iff its `gen` matches. Bumped
    /// when the slot is freed, which invalidates every outstanding handle.
    gen: u32,
    /// The deepest tier this attempt's front is currently at (queued,
    /// executing, in flight towards, or waiting out a retransmit at) — the
    /// coordinate a cancel chase homes in on. Updated on every send and
    /// every reply hop.
    head: u8,
    /// The client's attempt timer fired: this attempt keeps consuming
    /// resources but its terminal outcome no longer counts.
    orphan: bool,
}

#[derive(Debug)]
enum TierState {
    Sync(ProcessGroup),
    Async(EventLoop),
}

/// Lifecycle of one replica under the control plane. Every replica of an
/// uncontrolled run stays `Active` forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaLife {
    /// In the balancer's eligible set.
    Active,
    /// Removed from balancing but finishing its admitted work; kernel SYN
    /// retransmits still land here (the L4 5-tuple pin outlives the drain).
    Draining,
    /// Drained to idle. Never picked again; a pinned retransmit that races
    /// the retirement resolves to [`ReplicaGone`] and re-balances.
    Retired,
}

/// A kernel SYN retransmit targeted a replica the control plane retired
/// after the original drop (the L4 pin outlived the instance). The engine
/// recovers by re-balancing the connection; this type exists so the
/// condition is an inspectable error, never an invalid-index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaGone {
    /// Tier whose replica set no longer serves the pin.
    pub tier: usize,
    /// The retired replica index the retransmit targeted.
    pub replica: usize,
}

impl std::fmt::Display for ReplicaGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retransmit pinned to retired replica {} of tier {}",
            self.replica, self.tier
        )
    }
}

impl std::error::Error for ReplicaGone {}

/// One instance of a (possibly replicated) tier: its own admission state,
/// backlog, CPU, downstream connection pool and telemetry. An unreplicated
/// tier is a [`NodeRuntime`] with exactly one `Replica`.
#[derive(Debug)]
struct Replica {
    state: TierState,
    backlog: Backlog<Pending>,
    cpu: CpuModel,
    conn_pool: Option<ConnectionPool>,
    util: UtilizationSeries,
    queue_depth: WindowedSeries,
    drops: WindowedSeries,
    vlrt: WindowedSeries,
    drops_total: u64,
    peak_queue: usize,
    life: ReplicaLife,
    /// Health-ejected: out of the balancer's eligible set on gray-failure
    /// evidence, but *not* draining — admitted work, backlog entries and
    /// kernel-pinned retransmits all still land here, and reinstatement
    /// flips the flag back without any replacement-capacity machinery.
    ejected: bool,
}

impl Replica {
    fn depth(&self) -> usize {
        match &self.state {
            TierState::Sync(pg) => pg.busy() + self.backlog.len(),
            TierState::Async(el) => el.in_flight(),
        }
    }

    /// The one eligibility predicate every balancer pick path shares:
    /// a replica takes fresh connections only while `Active` *and* not
    /// health-ejected. Drain, retire and ejection all flow through here,
    /// so a policy cannot disagree with its peers about who is pickable.
    #[inline]
    fn is_eligible(&self) -> bool {
        self.life == ReplicaLife::Active && !self.ejected
    }

    fn spawns(&self) -> u64 {
        match &self.state {
            TierState::Sync(pg) => pg.spawns_total(),
            TierState::Async(_) => 0,
        }
    }
}

/// Runtime state of one call-graph node: its replica set plus the per-hop
/// policy machinery (which belongs to the hop *into* the node, not to any
/// single replica).
#[derive(Debug)]
struct NodeRuntime {
    replicas: Vec<Replica>,
    /// Replicas currently ineligible for fresh picks: draining, retired or
    /// health-ejected (`!`[`Replica::is_eligible`]). While 0 — always, for
    /// uncontrolled and undetected runs — `pick_replica` takes the exact
    /// pre-control code paths, which keeps existing runs bit-identical.
    inactive: usize,
    /// Round-robin cursor for [`Balancer::RoundRobin`].
    rr_next: u32,
    /// Dedicated stream for balancer policies that draw ([`Balancer::P2c`]).
    /// Forked per node, consumed only when `replicas > 1` — single-instance
    /// nodes take no randomness, which keeps pre-topology runs bit-stable.
    rng: SimRng,
    /// Breaker guarding the hop *into* this tier (tier 0: the client's).
    hop_breaker: Option<CircuitBreaker>,
    /// Retry budget for the hop into this tier.
    hop_bucket: Option<TokenBucket>,
    /// Adaptive concurrency limiter when the tier sheds via
    /// [`ShedPolicy::Aimd`]; fed a latency sample per finished visit.
    aimd: Option<AimdLimiter>,
    /// Resilience counters for the hop into this tier.
    res: ResilienceStats,
}

/// Outcome of an admission attempt, computed while the tier is mutably
/// borrowed and acted on afterwards.
#[derive(Debug, Clone, Copy)]
enum Admit {
    /// A thread/worker slot was claimed; start the visit.
    Start(Occupancy),
    /// Parked in the accept backlog.
    Backlogged,
    /// The message was dropped.
    Dropped,
}

/// Everything the engine keeps per controlled run: the pure controller,
/// its dedicated rng fork, and the previous tick's counter snapshots (the
/// controller consumes per-window deltas, not run-to-date totals).
#[derive(Debug)]
struct ControlRuntime {
    ctl: Controller,
    /// The control plane's only randomness source (drain-victim
    /// tie-breaks), forked off the run seed as `"control"`.
    rng: SimRng,
    tick: SimDuration,
    /// The hedge tuner's quantile, when armed; read per tick from the
    /// recent-window sketch.
    hedge_q: Option<f64>,
    prev_injected: u64,
    prev_completed: u64,
    prev_retries: u64,
    prev_hedges: u64,
    /// Per-tier, per-replica `drops_total` at the previous tick.
    prev_drops: Vec<Vec<u64>>,
    prev_shed: Vec<u64>,
    /// Worst retransmit ordinal among this window's drops (1 = an original
    /// send dropped, climbing values mean the 3/6/9 s ladder).
    window_max_ordinal: u8,
    /// Completions since the previous tick, sketched: the controller's
    /// recent-latency quantiles come from here (cleared per tick), not
    /// from run-wide histogram deltas — O(1) state, ~0.4 % error.
    window: QuantileSketch,
}

/// Everything the engine keeps per health-monitored run: the pure detector,
/// its dedicated rng fork, and the decision log its verdicts land in. The
/// log is merged with the controller's (when both run) in `into_report`, so
/// `Ejected`/`Reinstated` ride the same CSV/`RootCause` joins as scale-ups
/// and brakes.
#[derive(Debug)]
struct HealthRuntime {
    det: HealthDetector,
    /// The detection plane's only randomness source (trickle-probe
    /// routing), forked off the run seed as `"health"`. Consumed only when
    /// a probation replica exists, so detection on a healthy run draws
    /// nothing.
    rng: SimRng,
    /// Copied out of the policy so the pick hot path reads them without
    /// reaching through the detector.
    tier: usize,
    tick: SimDuration,
    probe: f64,
    log: ControlLog,
}

/// The simulation engine for one run.
#[derive(Debug)]
pub struct Engine {
    cfg: SystemConfig,
    workload: Workload,
    horizon: SimDuration,
    queue: EngineQueue,
    now: SimTime,
    tiers: Vec<NodeRuntime>,
    /// Cached `cfg.shape.has_fanout()`: fan-out runs pay the plan/shape
    /// cross-check at inject; linear chains skip it.
    has_fanout: bool,
    /// Request slab: slots are recycled through `free_slots` when a request
    /// reaches a terminal outcome, so steady-state memory tracks the peak
    /// in-flight population instead of the total injected count.
    requests: Vec<RequestState>,
    /// Hot fields of the slab, same indexing as `requests` (see [`HotSlot`]).
    hot: Vec<HotSlot>,
    free_slots: Vec<u32>,
    /// Granted-but-not-yet-fired client retries (see [`RetryTicket`]).
    tickets: Vec<RetryTicket>,
    /// Hedged logical requests (see [`LogicalState`]); recycled like the
    /// request slab.
    logicals: Vec<LogicalState>,
    free_logicals: Vec<u32>,
    /// Caller-wide token bucket metering hedge launches.
    hedge_bucket: Option<TokenBucket>,
    events_handled: u64,
    rng_mix: SimRng,
    rng_clients: SimRng,
    latency: LatencyHistogram,
    vlrt_by_completion: WindowedSeries,
    injected: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    /// Logical requests resolved by a deadline *with* cancellation: the
    /// caller gave up and revoked the outstanding work.
    cancelled: u64,
    drops_total: u64,
    vlrt_total: u64,
    next_token: u64,
    parked: HashMap<u64, (ReqId, usize, u16)>,
    class_stats: HashMap<&'static str, ClassStats>,
    rng_faults: SimRng,
    rng_jitter: SimRng,
    /// Per-tier fault state toggled by the plan's begin/end events.
    tier_down: Vec<bool>,
    drop_prob: Vec<f64>,
    extra_hop: Vec<SimDuration>,
    /// Workers actually wedged per stuck-worker fault (index = fault index).
    stuck_acquired: Vec<usize>,
    /// Per-request span recorder; every call is a no-op compare against
    /// [`TRACE_NONE`] when tracing is disabled.
    tracer: Tracer,
    /// Closed-loop control plane state; `None` for uncontrolled runs.
    control: Option<Box<ControlRuntime>>,
    /// Gray-failure detection state; `None` when no `HealthPolicy` is set.
    health: Option<Box<HealthRuntime>>,
    /// Per-tier, per-replica service-rate multiplier from gray-degradation
    /// windows (1.0 = nominal). A slice's effective demand is scaled by it,
    /// and the scale is skipped entirely at exactly 1.0 so fault-free runs
    /// keep exact demands.
    rate_mult: Vec<Vec<f64>>,
    /// Per-tier, per-replica message-loss probability from flaky-link
    /// windows (0.0 = clean). Checked after replica resolution; the rng is
    /// drawn only while a window is open.
    replica_drop: Vec<Vec<f64>>,
    /// Per-tier admission ceiling installed by the overload governor
    /// (`None` = unbraked).
    governor_limit: Vec<Option<usize>>,
    /// Controller-set hedge delay overriding the configured policy.
    hedge_override: Option<SimDuration>,
    /// Streaming metrics plane; `None` for unmetered runs.
    metrics: Option<Box<MetricsRegistry>>,
    /// Optional live JSONL sink: each frozen snapshot is written as one
    /// line *during* the run (attach via [`Engine::with_metrics_sink`]).
    metrics_sink: Option<MetricsSink>,
    /// Dedicated rng fork feeding [`Workload::Source`] pulls, so streamed
    /// arrivals consume randomness independently of every other plane.
    rng_source: SimRng,
    /// The one arrival pulled ahead under [`Workload::Source`] (its
    /// `Inject` event is already queued).
    pending_arrival: Option<SourcedRequest>,
    /// Last streamed arrival time, for the monotonicity guard.
    last_arrival: SimTime,
    /// A fault reported by the arrival source (or the engine's own
    /// monotonicity guard); copied into the report.
    workload_fault: Option<String>,
}

/// A streaming destination for metrics snapshots (opaque in debug output).
struct MetricsSink(Box<dyn std::io::Write + Send>);

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsSink(..)")
    }
}

impl Engine {
    /// Creates an engine for `cfg` under `workload`, simulating `horizon`
    /// with the given seed.
    ///
    /// # Panics
    ///
    /// Panics where [`Engine::try_new`] would return an error, and if `cfg`
    /// has no tiers or a tier declares a downstream pool without exactly
    /// one downstream. (Configs built through [`crate::TopologyBuilder`]
    /// are already validated; these asserts catch hand-assembled configs.)
    pub fn new(cfg: SystemConfig, workload: Workload, horizon: SimDuration, seed: u64) -> Self {
        Self::try_new(cfg, workload, horizon, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Engine::new`] with typed workload validation: a mix-based workload
    /// paired with a system that cannot compile its plans returns a
    /// [`WorkloadError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::MixRequiresThreeTier`] when a closed-loop
    /// or open-mix workload is paired with anything but a plain 3-tier
    /// chain.
    ///
    /// # Panics
    ///
    /// Config-structure violations (empty tier list, dangling downstream
    /// pool, fault targets outside the chain) still panic, as in
    /// [`Engine::new`].
    #[allow(deprecated)]
    pub fn try_new(
        cfg: SystemConfig,
        workload: Workload,
        horizon: SimDuration,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        if matches!(workload, Workload::Closed { .. } | Workload::Open { .. })
            && !(cfg.tiers.len() == 3 && cfg.shape.is_linear())
        {
            return Err(WorkloadError::MixRequiresThreeTier {
                tiers: cfg.tiers.len(),
                linear: cfg.shape.is_linear(),
            });
        }
        assert!(!cfg.tiers.is_empty(), "a system needs at least one tier");
        assert_eq!(
            cfg.shape.len(),
            cfg.tiers.len(),
            "topology shape covers {} nodes but the config has {} tiers",
            cfg.shape.len(),
            cfg.tiers.len()
        );
        for (i, tc) in cfg.tiers.iter().enumerate() {
            assert!(
                tc.downstream_pool.is_none() || cfg.shape.children[i].len() == 1,
                "tier {}: a downstream connection pool requires exactly one downstream",
                tc.name
            );
        }
        if let Some(max) = cfg.faults.max_tier() {
            assert!(
                max < cfg.tiers.len(),
                "fault targets tier {max} outside the chain"
            );
        }
        for f in cfg.faults.faults() {
            if let Some(r) = f.replica() {
                let t = f.tier();
                let n = cfg.tiers[t].replicas.max(1);
                assert!(
                    r < n,
                    "gray fault targets replica {r} of tier {t}, which has {n} replicas"
                );
            }
        }
        let root = SimRng::seed_from(seed);
        let bal_root = root.fork("balancer");
        let tiers: Vec<NodeRuntime> = cfg
            .tiers
            .iter()
            .enumerate()
            .map(|(i, tc)| {
                let replicas = (0..tc.replicas.max(1))
                    .map(|r| Self::make_replica(tc, r, horizon))
                    .collect();
                NodeRuntime {
                    replicas,
                    inactive: 0,
                    rr_next: 0,
                    rng: bal_root.fork(&format!("node-{i}")),
                    hop_breaker: tc
                        .caller_policy
                        .as_ref()
                        .and_then(|p| p.breaker)
                        .map(CircuitBreaker::new),
                    hop_bucket: tc
                        .caller_policy
                        .as_ref()
                        .and_then(|p| p.budget)
                        .map(|b| TokenBucket::new(b, SimTime::ZERO)),
                    aimd: match tc.shed {
                        Some(ShedPolicy::Aimd(acfg)) => Some(AimdLimiter::new(acfg)),
                        _ => None,
                    },
                    res: ResilienceStats::default(),
                }
            })
            .collect();
        let n_tiers = cfg.tiers.len();
        let n_faults = cfg.faults.faults().len();
        let hedge_bucket = cfg.tiers[0]
            .caller_policy
            .as_ref()
            .and_then(|p| p.hedge)
            .and_then(|h| h.budget)
            .map(|b| TokenBucket::new(b, SimTime::ZERO));
        let trace_cfg = cfg.trace;
        let has_fanout = cfg.shape.has_fanout();
        let latency = LatencyHistogram::paper_default();
        let control = cfg.control.map(|c| {
            Box::new(ControlRuntime {
                rng: root.fork("control"),
                tick: c.tick,
                hedge_q: c.tuner.as_ref().and_then(|t| t.hedge.as_ref()).map(|h| h.q),
                prev_injected: 0,
                prev_completed: 0,
                prev_retries: 0,
                prev_hedges: 0,
                prev_drops: tiers.iter().map(|n| vec![0; n.replicas.len()]).collect(),
                prev_shed: vec![0; n_tiers],
                window_max_ordinal: 0,
                window: QuantileSketch::new(),
                ctl: Controller::new(c),
            })
        });
        let health = cfg.health.clone().map(|h| {
            assert!(
                h.tier < tiers.len(),
                "health detector targets tier {} of {}",
                h.tier,
                tiers.len()
            );
            let replicas = tiers[h.tier].replicas.len();
            Box::new(HealthRuntime {
                rng: root.fork("health"),
                tier: h.tier,
                tick: h.tick,
                probe: h.probe_fraction,
                log: ControlLog::default(),
                det: HealthDetector::new(h, replicas),
            })
        });
        let metrics = cfg.metrics.map(|m| Box::new(MetricsRegistry::new(&m)));
        let tiers_rate_mult: Vec<Vec<f64>> =
            tiers.iter().map(|n| vec![1.0; n.replicas.len()]).collect();
        let tiers_replica_drop: Vec<Vec<f64>> =
            tiers.iter().map(|n| vec![0.0; n.replicas.len()]).collect();
        Ok(Engine {
            cfg,
            workload,
            horizon,
            queue: EngineQueue::Single(EventQueue::with_capacity(1 << 16)),
            now: SimTime::ZERO,
            tiers,
            has_fanout,
            requests: Vec::with_capacity(1024),
            hot: Vec::with_capacity(1024),
            free_slots: Vec::new(),
            tickets: Vec::new(),
            logicals: Vec::new(),
            free_logicals: Vec::new(),
            hedge_bucket,
            events_handled: 0,
            rng_mix: root.fork("mix"),
            rng_clients: root.fork("clients"),
            latency,
            vlrt_by_completion: WindowedSeries::paper_default_for(horizon),
            injected: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            cancelled: 0,
            drops_total: 0,
            vlrt_total: 0,
            next_token: 0,
            parked: HashMap::new(),
            class_stats: HashMap::new(),
            rng_faults: root.fork("faults"),
            rng_jitter: root.fork("retry-jitter"),
            tier_down: vec![false; n_tiers],
            drop_prob: vec![0.0; n_tiers],
            extra_hop: vec![SimDuration::ZERO; n_tiers],
            stuck_acquired: vec![0; n_faults],
            tracer: Tracer::new(trace_cfg, root.fork("trace-sample")),
            control,
            health,
            rate_mult: tiers_rate_mult,
            replica_drop: tiers_replica_drop,
            governor_limit: vec![None; n_tiers],
            hedge_override: None,
            metrics,
            metrics_sink: None,
            rng_source: root.fork("arrival-source"),
            pending_arrival: None,
            last_arrival: SimTime::ZERO,
            workload_fault: None,
        })
    }

    /// Attaches a streaming JSONL sink: every metrics snapshot is written
    /// as one line the moment it is frozen, so long runs can be observed
    /// (and tailed) while they execute. A no-op unless the config enables
    /// the metrics plane via [`SystemConfig::with_metrics`].
    #[must_use]
    pub fn with_metrics_sink(mut self, sink: Box<dyn std::io::Write + Send>) -> Self {
        self.metrics_sink = Some(MetricsSink(sink));
        self
    }

    /// Builds one replica instance of `tc` (replica index `r` selects its
    /// stall schedule). Used for the initial set and for autoscaler
    /// provisioning mid-run.
    fn make_replica(tc: &TierSpec, r: usize, horizon: SimDuration) -> Replica {
        let stalls = StallTimeline::from_intervals(tc.stalls_for(r).intervals().iter().copied());
        let (state, backlog_cap) = match &tc.kind {
            TierKind::Sync {
                threads,
                backlog,
                max_processes,
                spawn_delay,
            } => (
                TierState::Sync(ProcessGroup::new(*threads, *max_processes, *spawn_delay)),
                *backlog,
            ),
            TierKind::Async {
                lite_q_depth,
                workers,
            } => (TierState::Async(EventLoop::new(*lite_q_depth, *workers)), 0),
        };
        Replica {
            state,
            backlog: Backlog::new(backlog_cap),
            cpu: CpuModel::new(tc.cores, stalls),
            conn_pool: tc.downstream_pool.map(ConnectionPool::new),
            util: UtilizationSeries::paper_default_for(tc.cores, horizon),
            queue_depth: WindowedSeries::paper_default_for(horizon),
            drops: WindowedSeries::paper_default_for(horizon),
            vlrt: WindowedSeries::paper_default_for(horizon),
            drops_total: 0,
            peak_queue: 0,
            life: ReplicaLife::Active,
            ejected: false,
        }
    }

    /// Runs the simulation to the horizon and returns the report.
    ///
    /// The loop drains events in *runs* sharing one timestamp: the batch
    /// comes off the calendar's active ring in O(1) per event without
    /// re-touching the wheel, and events the handlers schedule take later
    /// sequence numbers, so batch application reproduces the one-pop-at-a-
    /// time order bit-for-bit.
    pub fn run(mut self) -> RunReport {
        self.schedule_workload();
        let end = SimTime::ZERO + self.horizon;
        let mut batch = Vec::with_capacity(EVENT_BATCH);
        while let Some((t, ev)) = self.queue.pop_run(&mut batch, EVENT_BATCH) {
            if t > end {
                break;
            }
            self.now = t;
            self.events_handled += 1;
            self.handle(ev);
            if !batch.is_empty() {
                // Anything the first handler scheduled at `t` carries a
                // later seq than the drained run, so applying the batch
                // before re-polling the queue is exactly the serial order.
                for ev in batch.drain(..) {
                    self.events_handled += 1;
                    self.handle(ev);
                }
            }
        }
        self.into_report()
    }

    /// Runs the simulation with the event schedule spatially partitioned
    /// into `shards` per-subtree calendar queues (see [`ShardPlan`] for the
    /// preorder cut and DESIGN.md §14 for the synchronization design).
    ///
    /// The report is **bit-identical** to [`Self::run`] at any shard
    /// count: `shards == 1` *is* the single-queue engine, and the sharded
    /// merge preserves the global `(time, seq)` order by construction —
    /// the property `tests/determinism.rs` pins field-for-field on the
    /// golden presets.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn run_sharded(mut self, shards: usize) -> RunReport {
        assert!(shards > 0, "a run needs at least one shard");
        if shards > 1 {
            let plan = ShardPlan::cut(&self.cfg.shape, shards, self.cfg.hop_delay);
            self.queue = EngineQueue::Sharded {
                q: ShardedQueue::new(shards),
                plan,
            };
        }
        self.run()
    }

    #[allow(deprecated)]
    fn schedule_workload(&mut self) {
        for (i, fault) in self.cfg.faults.faults().iter().enumerate() {
            let (from, until) = fault.window();
            self.queue.push(from, Event::FaultBegin { idx: i as u16 });
            self.queue.push(until, Event::FaultEnd { idx: i as u16 });
        }
        match &self.workload {
            Workload::Closed { spec, .. } => {
                let clients = spec.clients();
                let offsets: Vec<SimDuration> = (0..clients)
                    .map(|_| spec.start_offset(&mut self.rng_clients))
                    .collect();
                for (c, offset) in offsets.into_iter().enumerate() {
                    self.queue.push(
                        SimTime::ZERO + offset,
                        Event::ClientSend { client: c as u32 },
                    );
                }
            }
            Workload::Open { arrivals, .. } => {
                for (i, t) in arrivals.iter().enumerate() {
                    self.queue.push(*t, Event::Inject { idx: i as u32 });
                }
            }
            Workload::OpenPlans { arrivals } => {
                for (i, (t, _)) in arrivals.iter().enumerate() {
                    self.queue.push(*t, Event::Inject { idx: i as u32 });
                }
            }
            Workload::Source(_) => self.pull_next_arrival(),
        }
        if let Some(cr) = &self.control {
            self.queue
                .push(SimTime::ZERO + cr.tick, Event::ControllerTick);
        }
        if let Some(hr) = &self.health {
            self.queue.push(SimTime::ZERO + hr.tick, Event::HealthTick);
        }
        if let Some(m) = &self.metrics {
            self.queue
                .push(SimTime::ZERO + m.interval(), Event::MetricsTick);
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::ClientSend { client } => self.inject(Some(client), 0),
            Event::Inject { idx } => self.inject(None, idx),
            Event::Arrival { req, tier, visit } => self.on_arrival(req, tier as usize, visit),
            Event::SliceDone { req, tier, visit } => self.on_slice_done(req, tier as usize, visit),
            Event::ReplyArrive { req, tier } => self.on_reply(req, tier as usize),
            Event::SpawnDone { tier, replica } => {
                self.on_spawn_done(tier as usize, replica as usize)
            }
            Event::ArmReply { parent } => self.on_arm_reply(parent),
            Event::AttemptTimeout { req } => self.on_attempt_timeout(req),
            Event::RetryFire { ticket } => self.on_retry_fire(ticket),
            Event::FaultBegin { idx } => self.on_fault_begin(idx as usize),
            Event::FaultEnd { idx } => self.on_fault_end(idx as usize),
            Event::HedgeFire { logical, lgen } => self.on_hedge_fire(logical, lgen),
            Event::LogicalDeadline { logical, lgen } => self.on_logical_deadline(logical, lgen),
            Event::CancelArrive { req, tier } => self.on_cancel_arrive(req, tier as usize),
            Event::ControllerTick => self.on_controller_tick(),
            Event::ReplicaReady { tier } => self.on_replica_ready(tier as usize),
            Event::HealthTick => self.on_health_tick(),
            Event::MetricsTick => self.on_metrics_tick(),
        }
    }

    /// The metrics plane's snapshot tick: read the engine's gauges into a
    /// [`MetricsSample`], freeze a snapshot in the registry, stream it to
    /// the sink if one is attached, and reschedule. Strictly read-only
    /// against the simulation — no rng draws, no state mutations outside
    /// the registry — so metered and unmetered runs simulate the exact
    /// same system (pinned by `tests/metrics.rs`).
    fn on_metrics_tick(&mut self) {
        let Some(mut reg) = self.metrics.take() else {
            return;
        };
        let elapsed = self.now.as_micros();
        let tiers = self
            .tiers
            .iter()
            .map(|node| TierSample {
                replicas: node
                    .replicas
                    .iter()
                    .map(|rep| ReplicaSample {
                        depth: rep.depth() as u64,
                        drops: rep.drops_total,
                        util_ppm: if elapsed == 0 {
                            0
                        } else {
                            rep.util.total_busy_micros() * 1_000_000
                                / (u64::from(rep.cpu.cores()) * elapsed)
                        },
                    })
                    .collect(),
            })
            .collect();
        let sample = MetricsSample {
            now: self.now,
            events_handled: self.events_handled,
            events_scheduled: self.queue.scheduled_total(),
            slab_live: (self.requests.len() - self.free_slots.len()) as u64,
            slab_slots: self.requests.len() as u64,
            injected: self.injected,
            completed: self.completed,
            failed: self.failed,
            shed: self.shed,
            drops_total: self.drops_total,
            retries: self.tiers.iter().map(|t| t.res.retries).sum(),
            hedges: self.tiers[0].res.hedges,
            tiers,
        };
        let snap = reg.tick(sample);
        if let Some(MetricsSink(w)) = &mut self.metrics_sink {
            use std::io::Write as _;
            writeln!(w, "{}", snap.jsonl()).expect("metrics sink write failed");
        }
        let next = self.now + reg.interval();
        if next <= SimTime::ZERO + self.horizon {
            self.queue.push(next, Event::MetricsTick);
        }
        self.metrics = Some(reg);
    }

    /// The control plane's step-synchronous tick: build the per-window
    /// observation, run the pure controller, actuate its directives, and
    /// retire drained replicas that reached idle. All control-plane
    /// randomness comes from the dedicated `"control"` fork, so controlled
    /// runs stay bit-identical across worker-thread counts and uncontrolled
    /// runs never reach this path.
    fn on_controller_tick(&mut self) {
        let Some(mut cr) = self.control.take() else {
            return;
        };
        let retries_now: u64 = self.tiers.iter().map(|t| t.res.retries).sum();
        let hedges_now = self.tiers[0].res.hedges;
        let mut tiers_obs = Vec::with_capacity(self.tiers.len());
        for (t, node) in self.tiers.iter().enumerate() {
            let replicas = node
                .replicas
                .iter()
                .enumerate()
                .map(|(r, rep)| ReplicaObs {
                    depth: rep.depth(),
                    draining: rep.life == ReplicaLife::Draining,
                    retired: rep.life == ReplicaLife::Retired,
                    drops_delta: rep.drops_total - cr.prev_drops[t][r],
                })
                .collect();
            tiers_obs.push(TierObs {
                replicas,
                shed_delta: node.res.shed - cr.prev_shed[t],
            });
        }
        let obs = Observation {
            now: self.now,
            injected_delta: self.injected - cr.prev_injected,
            completed_delta: self.completed - cr.prev_completed,
            retries_delta: retries_now - cr.prev_retries,
            hedges_delta: hedges_now - cr.prev_hedges,
            max_retrans_ordinal: cr.window_max_ordinal,
            recent_p50: cr.window.quantile(0.50),
            recent_p99: cr.window.quantile(0.99),
            recent_hedge_q: cr.hedge_q.and_then(|q| cr.window.quantile(q)),
            tiers: tiers_obs,
        };
        let directives = cr.ctl.tick(&obs, &mut cr.rng);
        for d in directives {
            self.apply_directive(&mut cr, d);
        }
        // Drain-before-remove: a draining replica retires only once its
        // last in-flight visit and backlog entry have run to completion.
        for t in 0..self.tiers.len() {
            for r in 0..self.tiers[t].replicas.len() {
                let rep = &mut self.tiers[t].replicas[r];
                if rep.life == ReplicaLife::Draining && rep.depth() == 0 {
                    rep.life = ReplicaLife::Retired;
                    cr.ctl.note_replica_retired(self.now, t, r);
                }
            }
        }
        cr.prev_injected = self.injected;
        cr.prev_completed = self.completed;
        cr.prev_retries = retries_now;
        cr.prev_hedges = hedges_now;
        for (t, node) in self.tiers.iter().enumerate() {
            cr.prev_drops[t].clear();
            cr.prev_drops[t].extend(node.replicas.iter().map(|r| r.drops_total));
            cr.prev_shed[t] = node.res.shed;
        }
        cr.window_max_ordinal = 0;
        cr.window.clear();
        let next = self.now + cr.tick;
        if next <= SimTime::ZERO + self.horizon {
            self.queue.push(next, Event::ControllerTick);
        }
        self.control = Some(cr);
    }

    /// Actuates one controller directive against the plant.
    fn apply_directive(&mut self, cr: &mut ControlRuntime, d: Directive) {
        match d {
            Directive::AddReplica { tier } => {
                let lag = cr
                    .ctl
                    .config()
                    .autoscaler
                    .as_ref()
                    .map(|a| a.provisioning_lag)
                    .unwrap_or(SimDuration::ZERO);
                self.queue
                    .push(self.now + lag, Event::ReplicaReady { tier: tier as u8 });
            }
            Directive::DrainReplica { tier, replica } => {
                let rep = &mut self.tiers[tier].replicas[replica];
                if rep.life == ReplicaLife::Active {
                    rep.life = ReplicaLife::Draining;
                    // An ejected replica is already counted ineligible; the
                    // drain must not double-count it (`inactive` counts
                    // replicas, not reasons).
                    if !rep.ejected {
                        self.tiers[tier].inactive += 1;
                    }
                }
            }
            Directive::SetHedgeDelay { delay } => self.hedge_override = Some(delay),
            Directive::SetAimdBounds { tier, min, max } => {
                if let Some(lim) = self.tiers[tier].aimd.as_mut() {
                    lim.set_bounds(min, max);
                }
            }
            Directive::SetBrake { tier, depth } => self.governor_limit[tier] = depth,
        }
    }

    /// A provisioned replica's lag elapsed: it joins the tier's replica set
    /// and becomes eligible on the next fresh connection. Replica ids are
    /// `u8`, so provisioning saturates at 255 instances per tier.
    fn on_replica_ready(&mut self, tier: usize) {
        let Some(mut cr) = self.control.take() else {
            return;
        };
        let r = self.tiers[tier].replicas.len();
        if r < u8::MAX as usize {
            let rep = Self::make_replica(&self.cfg.tiers[tier], r, self.horizon);
            self.tiers[tier].replicas.push(rep);
            cr.prev_drops[tier].push(0);
            self.rate_mult[tier].push(1.0);
            self.replica_drop[tier].push(0.0);
            if let Some(hr) = self.health.as_mut() {
                if hr.tier == tier {
                    hr.det.on_replica_added();
                }
            }
            cr.ctl.note_replica_online(self.now, tier, r);
        }
        self.control = Some(cr);
    }

    /// The gray-failure detector's scoring tick: run the pure detector over
    /// the monitored tier's passive signals and actuate its verdicts.
    /// Ejection only removes the replica from the shared eligibility mask —
    /// admitted work, backlog entries and kernel-pinned retransmits keep
    /// draining to it (ejected ≠ retired), so no in-flight state is ever
    /// invalidated. Undetected runs never reach this path.
    fn on_health_tick(&mut self) {
        let Some(mut hr) = self.health.take() else {
            return;
        };
        hr.log.ticks += 1;
        let tier = hr.tier;
        let active: Vec<bool> = self.tiers[tier]
            .replicas
            .iter()
            .map(|r| r.life == ReplicaLife::Active)
            .collect();
        for v in hr.det.tick(self.now, &active) {
            match v {
                HealthVerdict::Eject { replica, score, z } => {
                    let rep = &mut self.tiers[tier].replicas[replica];
                    // A re-eject of an already-benched replica is a failed
                    // probation (the detector restarted its clock); narrate
                    // it as such rather than as a fresh outlier call.
                    let reason = if rep.ejected {
                        format!("probation failed at score {score:.2}")
                    } else {
                        rep.ejected = true;
                        if rep.life == ReplicaLife::Active {
                            self.tiers[tier].inactive += 1;
                        }
                        format!("health score {score:.2} with peer z {z:.2}")
                    };
                    hr.log
                        .push(self.now, Action::Ejected { tier, replica }, reason);
                }
                HealthVerdict::Reinstate { replica, score } => {
                    let rep = &mut self.tiers[tier].replicas[replica];
                    if rep.ejected {
                        rep.ejected = false;
                        if rep.life == ReplicaLife::Active {
                            self.tiers[tier].inactive -= 1;
                        }
                    }
                    hr.log.push(
                        self.now,
                        Action::Reinstated { tier, replica },
                        format!("probation clean at score {score:.2}"),
                    );
                }
            }
        }
        let next = self.now + hr.tick;
        if next <= SimTime::ZERO + self.horizon {
            self.queue.push(next, Event::HealthTick);
        }
        self.health = Some(hr);
    }

    /// Resolves a handle to its slab index, or `None` if the slot has been
    /// recycled since the handle was issued (the request reached a terminal
    /// outcome; the event referencing it is stale).
    #[inline]
    fn live(&self, id: ReqId) -> Option<usize> {
        let i = id.slot as usize;
        (self.hot[i].gen == id.gen).then_some(i)
    }

    /// [`Self::live`] for paths where a stale handle would mean a resource
    /// accounting bug (backlog entries, parked connection waiters, and
    /// terminal transitions all hold the request live by construction).
    #[inline]
    fn live_expect(&self, id: ReqId) -> usize {
        self.live(id)
            .expect("stale request handle on a resource-holding path")
    }

    /// Claims a slab slot (recycling a freed one when available) and
    /// initialises it for a fresh attempt.
    fn alloc_request(
        &mut self,
        injected_at: SimTime,
        client: Option<u32>,
        class: &'static str,
        plan: Plan,
        attempt: u32,
    ) -> ReqId {
        if let Some(slot) = self.free_slots.pop() {
            let r = &mut self.requests[slot as usize];
            r.injected_at = injected_at;
            r.client = client;
            r.class = class;
            r.plan = plan;
            r.slice_idx.fill(0);
            r.active_visit.fill(0);
            r.next_visit.fill(0);
            r.retrans = RetransmitState::new();
            r.drops.clear();
            r.occupying.fill(Occupancy::None);
            r.conn_held.fill(false);
            r.attempt = attempt;
            r.hop_attempts = 0;
            r.logical = LOGICAL_NONE;
            r.arrived_at.fill(SimTime::ZERO);
            r.replica.fill(0);
            r.arm_parent = None;
            r.arm_root = 0;
            r.fan_awaiting = 0;
            r.fan_live = 0;
            r.fan_node = 0;
            r.trace = TRACE_NONE;
            let h = &mut self.hot[slot as usize];
            h.head = 0;
            h.orphan = false;
            ReqId { slot, gen: h.gen }
        } else {
            let n = self.tiers.len();
            let slot = self.requests.len() as u32;
            self.requests.push(RequestState {
                injected_at,
                client,
                class,
                plan,
                slice_idx: vec![0; n],
                active_visit: vec![0; n],
                next_visit: vec![0; n],
                retrans: RetransmitState::new(),
                drops: DropLog::new(),
                occupying: vec![Occupancy::None; n],
                conn_held: vec![false; n],
                attempt,
                hop_attempts: 0,
                logical: LOGICAL_NONE,
                arrived_at: vec![SimTime::ZERO; n],
                replica: vec![0; n],
                arm_parent: None,
                arm_root: 0,
                fan_awaiting: 0,
                fan_live: 0,
                fan_node: 0,
                trace: TRACE_NONE,
            });
            self.hot.push(HotSlot {
                gen: 0,
                head: 0,
                orphan: false,
            });
            ReqId { slot, gen: 0 }
        }
    }

    /// Claims a logical-request slot for a hedged injection.
    fn alloc_logical(
        &mut self,
        injected_at: SimTime,
        client: Option<u32>,
        class: &'static str,
        plan: Plan,
    ) -> u32 {
        if let Some(lid) = self.free_logicals.pop() {
            let l = &mut self.logicals[lid as usize];
            l.resolved = false;
            l.attempts.clear();
            l.hedges_launched = 0;
            l.injected_at = injected_at;
            l.client = client;
            l.class = class;
            l.plan = plan;
            l.trace = TRACE_NONE;
            lid
        } else {
            self.logicals.push(LogicalState {
                gen: 0,
                resolved: false,
                attempts: Vec::new(),
                hedges_launched: 0,
                injected_at,
                client,
                class,
                plan,
                trace: TRACE_NONE,
            });
            (self.logicals.len() - 1) as u32
        }
    }

    /// Recycles a logical slot once it has resolved *and* every attempt has
    /// reached its terminal path; outstanding `HedgeFire`/`LogicalDeadline`
    /// events go stale via the generation bump.
    fn maybe_free_logical(&mut self, lid: u32) {
        let l = &mut self.logicals[lid as usize];
        if l.resolved && l.attempts.is_empty() {
            l.gen = l.gen.wrapping_add(1);
            let h = l.trace;
            l.trace = TRACE_NONE;
            self.free_logicals.push(lid);
            self.tracer.release(h);
        }
    }

    /// Detaches `req` from its logical request (no-op for non-hedged
    /// attempts) and recycles the logical slot if this was the last link.
    fn unlink_from_logical(&mut self, req: ReqId) {
        let lid = self.requests[req.slot as usize].logical;
        if lid == LOGICAL_NONE {
            return;
        }
        let l = &mut self.logicals[lid as usize];
        if let Some(pos) = l.attempts.iter().position(|a| *a == req) {
            l.attempts.remove(pos);
        }
        self.maybe_free_logical(lid);
    }

    /// Returns slot `i` to the free list; every outstanding [`ReqId`] for it
    /// goes stale.
    fn free_request(&mut self, i: usize) {
        let h = self.requests[i].trace;
        self.requests[i].trace = TRACE_NONE;
        self.hot[i].gen = self.hot[i].gen.wrapping_add(1);
        self.free_slots.push(i as u32);
        // The slot's release is the attempt's single release point; the
        // trace survives while a logical slot or retry ticket still holds it.
        self.tracer.release(h);
    }

    /// Pulls one arrival from the streaming source, queues its `Inject`,
    /// and parks the payload in `pending_arrival`. On exhaustion the
    /// source's fault (if any) is recorded; a time regression trips the
    /// engine's own monotonicity guard and ends the stream the same way.
    fn pull_next_arrival(&mut self) {
        let Workload::Source(src) = &mut self.workload else {
            return;
        };
        if self.workload_fault.is_some() {
            return;
        }
        match src.0.next_arrival(&mut self.rng_source) {
            Some((t, req)) => {
                if t < self.last_arrival {
                    self.workload_fault = Some(format!(
                        "arrival source emitted {t} after {}: times must be non-decreasing",
                        self.last_arrival
                    ));
                    return;
                }
                self.last_arrival = t;
                self.pending_arrival = Some(req);
                self.queue.push(t, Event::Inject { idx: u32::MAX });
            }
            None => {
                self.workload_fault = src.0.fault().map(str::to_owned);
            }
        }
    }

    #[allow(deprecated)]
    fn inject(&mut self, client: Option<u32>, idx: u32) {
        let (class, plan) = if matches!(self.workload, Workload::Source(_)) {
            let Some(req) = self.pending_arrival.take() else {
                return;
            };
            // Pull the successor before processing this arrival: the next
            // Inject takes an earlier sequence number than anything this
            // request schedules at the same timestamp, matching the order
            // the eager paths produce by pushing all arrivals up front.
            self.pull_next_arrival();
            (req.class, req.plan)
        } else {
            match &self.workload {
                Workload::Closed { mix, .. } | Workload::Open { mix, .. } => {
                    let s = mix.sample(&mut self.rng_mix);
                    (s.class, Plan::compile(&s))
                }
                Workload::OpenPlans { arrivals } => ("custom", arrivals[idx as usize].1.share()),
                Workload::Source(_) => unreachable!("handled above"),
            }
        };
        assert_eq!(
            plan.depth(),
            self.tiers.len(),
            "plan depth must match the system's tier count"
        );
        if self.has_fanout {
            if let Err(e) = plan.matches_shape(&self.cfg.shape) {
                panic!("{e}");
            }
        }
        // Fast-fail at the client while its breaker refuses the hop (in
        // half-open this admits the request as the probe).
        if self.tiers[0].hop_breaker.is_some() {
            let now = self.now;
            let allowed = self.tiers[0]
                .hop_breaker
                .as_mut()
                .expect("checked above")
                .try_acquire(now);
            if !allowed {
                self.injected += 1;
                self.shed += 1;
                self.tiers[0].res.shed += 1;
                self.class_stats.entry(class).or_default().shed += 1;
                // No RequestState ever exists: open and close a mini-trace
                // so breaker sheds still show up in the log.
                let h = self.tracer.start(self.now, class);
                self.tracer.record(
                    h,
                    self.now,
                    TraceEventKind::Shed {
                        tier: TierId::ROOT,
                        replica: ReplicaId::FIRST,
                    },
                );
                self.tracer
                    .set_terminal(h, self.now, TerminalClass::Shed, SimDuration::ZERO);
                self.tracer.release(h);
                self.schedule_client_next(client);
                return;
            }
        }
        if self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .is_some_and(|p| p.hedge.is_some())
        {
            self.inject_hedged(client, class, plan);
            return;
        }
        let id = self.alloc_request(self.now, client, class, plan, 0);
        self.requests[id.slot as usize].trace = self.tracer.start(self.now, class);
        self.injected += 1;
        self.arm_attempt_timer(id);
        self.send(id, 0, 0);
    }

    /// Injects under a hedged client policy: one logical request, a primary
    /// attempt now, backups on the hedge timer, and a single overall
    /// deadline instead of per-attempt timers (`retry` is ignored — hedging
    /// replaces sequential retry).
    fn inject_hedged(&mut self, client: Option<u32>, class: &'static str, plan: Plan) {
        let deadline = self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .expect("checked by caller")
            .attempt_timeout;
        let lid = self.alloc_logical(self.now, client, class, plan.share());
        self.injected += 1;
        // The logical slot owns the trace's start reference; the primary
        // attempt retains it so both must release before finalization.
        let h = self.tracer.start(self.now, class);
        self.logicals[lid as usize].trace = h;
        let id = self.alloc_request(self.now, client, class, plan, 0);
        self.tracer.retain(h);
        self.requests[id.slot as usize].trace = h;
        self.requests[id.slot as usize].logical = lid;
        self.logicals[lid as usize].attempts.push(id);
        let lgen = self.logicals[lid as usize].gen;
        self.queue.push(
            self.now + deadline,
            Event::LogicalDeadline { logical: lid, lgen },
        );
        self.schedule_next_hedge(lid);
        self.send(id, 0, 0);
    }

    /// Schedules the next `HedgeFire` for `lid`, if the per-request backup
    /// bound allows another. The delay is the policy's fixed value or the
    /// currently observed latency quantile (clamped), read from the run's
    /// completion histogram.
    fn schedule_next_hedge(&mut self, lid: u32) {
        let hedge = self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .and_then(|p| p.hedge)
            .expect("hedged path requires a hedge policy");
        let l = &self.logicals[lid as usize];
        if l.hedges_launched >= hedge.max_hedges {
            return;
        }
        // A controller-set delay overrides the configured policy (the
        // tuner already clamped it into the tuner's floor/cap band).
        let delay = match self.hedge_override {
            Some(d) => d,
            None => {
                let observed = match hedge.delay {
                    HedgeDelay::Quantile { q, .. } => self.latency.quantile(q),
                    HedgeDelay::Fixed(_) => None,
                };
                hedge.delay.resolve(observed)
            }
        };
        let lgen = l.gen;
        self.queue
            .push(self.now + delay, Event::HedgeFire { logical: lid, lgen });
    }

    /// A hedge timer fired: launch the next backup attempt unless the
    /// logical request already resolved or the hedge budget is empty (an
    /// empty budget also stops the hedge ladder for this request — budget
    /// pressure means the system is already saturated with duplicates).
    fn on_hedge_fire(&mut self, lid: u32, lgen: u32) {
        {
            let l = &self.logicals[lid as usize];
            if l.gen != lgen || l.resolved {
                return;
            }
        }
        let now = self.now;
        if let Some(bucket) = self.hedge_bucket.as_mut() {
            if !bucket.try_withdraw(now) {
                self.tiers[0].res.budget_exhausted += 1;
                return;
            }
        }
        let (injected_at, client, class, plan, attempt) = {
            let l = &mut self.logicals[lid as usize];
            l.hedges_launched += 1;
            (
                l.injected_at,
                l.client,
                l.class,
                l.plan.share(),
                l.hedges_launched,
            )
        };
        self.tiers[0].res.hedges += 1;
        let id = self.alloc_request(injected_at, client, class, plan, attempt);
        let h = self.logicals[lid as usize].trace;
        self.tracer.retain(h);
        self.tracer
            .record(h, self.now, TraceEventKind::HedgeFire { attempt });
        self.requests[id.slot as usize].trace = h;
        self.requests[id.slot as usize].logical = lid;
        self.logicals[lid as usize].attempts.push(id);
        self.send(id, 0, 0);
        self.schedule_next_hedge(lid);
    }

    /// The hedged caller's deadline passed with no winner: the logical
    /// request resolves as cancelled (cancel policy set — the caller
    /// revokes the outstanding work) or failed (no cancellation — the
    /// attempts run on as orphans).
    fn on_logical_deadline(&mut self, lid: u32, lgen: u32) {
        {
            let l = &self.logicals[lid as usize];
            if l.gen != lgen || l.resolved {
                return;
            }
        }
        self.logicals[lid as usize].resolved = true;
        self.tiers[0].res.timeouts += 1;
        let now = self.now;
        if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
            br.on_failure(now);
        }
        let cancel = self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .and_then(|p| p.cancel);
        if cancel.is_some() {
            self.cancelled += 1;
        } else {
            self.failed += 1;
        }
        {
            let l = &self.logicals[lid as usize];
            let latency = self.now.saturating_since(l.injected_at);
            let class = if cancel.is_some() {
                TerminalClass::Cancelled
            } else {
                TerminalClass::Failed
            };
            let h = l.trace;
            self.tracer.set_terminal(h, self.now, class, latency);
        }
        let attempts = self.logicals[lid as usize].attempts.clone();
        for att in attempts {
            if let Some(i) = self.live(att) {
                self.hot[i].orphan = true;
                if cancel.is_some() {
                    self.start_cancel(att);
                }
            }
        }
        let client = self.logicals[lid as usize].client;
        self.schedule_client_next(client);
        self.maybe_free_logical(lid);
    }

    /// Launches a cancel chase after attempt `req`, starting at tier 0.
    fn start_cancel(&mut self, req: ReqId) {
        let hop = self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .and_then(|p| p.cancel)
            .expect("start_cancel requires a cancel policy")
            .hop_delay;
        self.queue
            .push(self.now + hop, Event::CancelArrive { req, tier: 0 });
    }

    /// A cancel reaches `tier`. Three races, all realistic:
    /// * the attempt's front is **deeper** — forward the cancel one hop;
    /// * the front is **here** — reap: pluck it from the backlog or the
    ///   connection-pool wait queue, free every held thread/slot, and
    ///   retire the attempt (counted as `wasted_work_saved`);
    /// * the front is already **upstream** — the reply outran the cancel;
    ///   the chase ends and the reply completes as an orphan.
    fn on_cancel_arrive(&mut self, req: ReqId, tier: usize) {
        let Some(i) = self.live(req) else {
            return; // the attempt terminated on its own before the cancel landed
        };
        self.tiers[tier].res.cancels_propagated += 1;
        let head = self.hot[i].head as usize;
        if head > tier {
            let hop = self.cfg.tiers[0]
                .caller_policy
                .as_ref()
                .and_then(|p| p.cancel)
                .expect("cancel event requires a cancel policy")
                .hop_delay;
            self.queue.push(
                self.now + hop,
                Event::CancelArrive {
                    req,
                    tier: (tier + 1) as u8,
                },
            );
            return;
        }
        if head < tier {
            return;
        }
        self.reap_attempt(req, tier);
    }

    /// Physically removes attempt `req` from the system at `tier`: backlog
    /// slot, pooled-connection wait, and all held threads/admission slots
    /// are reclaimed; pending events for the attempt go stale via the
    /// generation bump.
    fn reap_attempt(&mut self, req: ReqId, tier: usize) {
        let i = self.live_expect(req);
        let rep = self.requests[i].replica[tier] as usize;
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::CancelReap {
                tier: TierId::from(tier),
                replica: ReplicaId::from(rep),
            },
        );
        if self.tiers[tier].replicas[rep]
            .backlog
            .remove_where(|p| p.req == req)
            .is_some()
        {
            self.record_queue(tier, rep);
        }
        // At most one parked pool wait can reference the attempt, so the
        // unordered scan is deterministic.
        let parked_token = self
            .parked
            .iter()
            .find_map(|(tok, (r, _, _))| (*r == req).then_some(*tok));
        if let Some(tok) = parked_token {
            let (_, target, _) = self.parked.remove(&tok).expect("token just seen");
            let pool_tier = self.cfg.shape.parent[target].expect("pooled hop has a caller");
            let pool_rep = self.requests[i].replica[pool_tier] as usize;
            let removed = self.tiers[pool_tier].replicas[pool_rep]
                .conn_pool
                .as_mut()
                .expect("parked wait implies a pool")
                .cancel_waiter(tok);
            debug_assert!(removed, "parked token missing from pool wait queue");
        }
        self.release_resources(req);
        self.tiers[tier].res.wasted_work_saved += 1;
        self.unlink_from_logical(req);
        self.free_request(i);
    }

    /// Arms the client's per-attempt timer, when a client policy is set.
    fn arm_attempt_timer(&mut self, req: ReqId) {
        if let Some(policy) = &self.cfg.tiers[0].caller_policy {
            self.queue.push(
                self.now + policy.attempt_timeout,
                Event::AttemptTimeout { req },
            );
        }
    }

    /// Schedules a message (SYN/query/forward) to arrive at `tier`.
    fn send(&mut self, req: ReqId, tier: usize, visit: u16) {
        // The attempt's front is now headed at `tier`; a cancel chasing it
        // must look there. During a retransmit wait the head *stays* at the
        // dropped tier, which is exactly what lets a cancel catch an attempt
        // stuck in RTO limbo.
        let i = self.live_expect(req);
        self.hot[i].head = tier as u8;
        let at = self.now + self.cfg.hop_delay + self.extra_hop[tier];
        self.queue.push(
            at,
            Event::Arrival {
                req,
                tier: tier as u8,
                visit,
            },
        );
    }

    /// Chooses the replica of `tier` a fresh connection attempt lands on,
    /// per the tier's [`Balancer`]. A single-instance tier short-circuits to
    /// replica 0 without consuming randomness, which keeps replica-count-1
    /// topologies bit-identical to the pre-replication engine.
    ///
    /// Ineligibility — drain, retirement, health ejection — is one shared
    /// predicate ([`Replica::is_eligible`]) checked the same way by every
    /// policy; `inactive == 0` is just the cached "mask is all-ones" fast
    /// path.
    fn pick_replica(&mut self, tier: usize) -> u8 {
        if self.tiers[tier].replicas.len() > 1 {
            // Trickle probes: a probation replica receives `probe_fraction`
            // of fresh picks so reinstatement evidence can accrue without
            // re-exposing real traffic to a still-sick instance. The draw
            // comes from the dedicated "health" fork and only happens while
            // somebody is on probation.
            if let Some(hr) = self.health.as_mut() {
                if hr.tier == tier {
                    if let Some(p) = hr.det.probe_candidate() {
                        if hr.rng.chance(hr.probe) {
                            return p as u8;
                        }
                    }
                }
            }
        }
        let node = &mut self.tiers[tier];
        let n = node.replicas.len();
        if n == 1 {
            return 0;
        }
        if node.inactive == 0 {
            // Every replica eligible: the exact pre-control code paths, so
            // uncontrolled runs stay bit-identical to their goldens.
            return match self.cfg.tiers[tier].balancer {
                Balancer::RoundRobin => {
                    let r = (node.rr_next as usize % n) as u8;
                    node.rr_next = node.rr_next.wrapping_add(1);
                    r
                }
                // The min scans run branchless: arithmetic selects instead
                // of a compare-and-branch the predictor loses on balanced
                // queue depths. Strict `<` keeps ties on the lowest index,
                // exactly the branchy scan's answer.
                Balancer::LeastOutstanding => {
                    let mut best = 0usize;
                    let mut best_depth = node.replicas[0].depth();
                    for (r, rep) in node.replicas.iter().enumerate().skip(1) {
                        let d = rep.depth();
                        let take = usize::from(d < best_depth);
                        best = take * r + (1 - take) * best;
                        best_depth = take * d + (1 - take) * best_depth;
                    }
                    best as u8
                }
                Balancer::Jsq => {
                    let mut best = 0usize;
                    let mut best_len = node.replicas[0].backlog.len();
                    for (r, rep) in node.replicas.iter().enumerate().skip(1) {
                        let l = rep.backlog.len();
                        let take = usize::from(l < best_len);
                        best = take * r + (1 - take) * best;
                        best_len = take * l + (1 - take) * best_len;
                    }
                    best as u8
                }
                Balancer::P2c => {
                    let a = node.rng.below(n as u64) as usize;
                    let mut b = node.rng.below(n as u64 - 1) as usize;
                    b += usize::from(b >= a);
                    let take = usize::from(node.replicas[b].depth() < node.replicas[a].depth());
                    (take * b + (1 - take) * a) as u8
                }
            };
        }
        // Some replicas are drained, retired or ejected: every policy works
        // from the same eligibility mask, built once per pick.
        let mut mask: Vec<bool> = node.replicas.iter().map(Replica::is_eligible).collect();
        if !mask.iter().any(|&m| m) {
            // The detector never ejects the last healthy replica, but a
            // controller drain can race an ejection into an empty mask.
            // Fresh work then has to go *somewhere*: an ejected-but-active
            // replica is the least-bad destination (a draining one is on
            // its way out and would strand the pin).
            for (r, rep) in node.replicas.iter().enumerate() {
                mask[r] = rep.life == ReplicaLife::Active;
            }
        }
        let eligible: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(r, _)| r)
            .collect();
        debug_assert!(
            !eligible.is_empty(),
            "replica 0 is never drained, so at least one replica is active"
        );
        if eligible.len() == 1 {
            return eligible[0] as u8;
        }
        match self.cfg.tiers[tier].balancer {
            Balancer::RoundRobin => loop {
                let r = node.rr_next as usize % n;
                node.rr_next = node.rr_next.wrapping_add(1);
                if mask[r] {
                    return r as u8;
                }
            },
            Balancer::LeastOutstanding => {
                let mut best = eligible[0];
                let mut best_depth = node.replicas[best].depth();
                for &r in &eligible[1..] {
                    let d = node.replicas[r].depth();
                    let take = usize::from(d < best_depth);
                    best = take * r + (1 - take) * best;
                    best_depth = take * d + (1 - take) * best_depth;
                }
                best as u8
            }
            Balancer::Jsq => {
                let mut best = eligible[0];
                let mut best_len = node.replicas[best].backlog.len();
                for &r in &eligible[1..] {
                    let l = node.replicas[r].backlog.len();
                    let take = usize::from(l < best_len);
                    best = take * r + (1 - take) * best;
                    best_len = take * l + (1 - take) * best_len;
                }
                best as u8
            }
            Balancer::P2c => {
                let m = eligible.len() as u64;
                let ai = node.rng.below(m) as usize;
                let mut bi = node.rng.below(m - 1) as usize;
                bi += usize::from(bi >= ai);
                let (a, b) = (eligible[ai], eligible[bi]);
                let take = usize::from(node.replicas[b].depth() < node.replicas[a].depth());
                (take * b + (1 - take) * a) as u8
            }
        }
    }

    /// Resolves the kernel-pinned replica for a SYN retransmit; fails with
    /// [`ReplicaGone`] when the pin outlived the instance.
    fn pinned_replica(&self, i: usize, tier: usize) -> Result<usize, ReplicaGone> {
        let rep = self.requests[i].replica[tier] as usize;
        if self.tiers[tier].replicas[rep].life == ReplicaLife::Retired {
            Err(ReplicaGone { tier, replica: rep })
        } else {
            Ok(rep)
        }
    }

    fn on_arrival(&mut self, req: ReqId, tier: usize, visit: u16) {
        let Some(i) = self.live(req) else {
            return;
        };
        // Resolve the replica first: a kernel SYN retransmit re-hits its
        // pinned replica (L4 5-tuple affinity); everything else — fresh
        // sends and app-level hop retries — re-picks through the balancer.
        let rep = if self.requests[i].retrans.attempts() > 0 {
            match self.pinned_replica(i, tier) {
                Ok(r) => r,
                Err(_gone) => {
                    // The pinned instance retired mid-RTO: the SYN meets a
                    // closed endpoint and the connection re-balances with a
                    // fresh pin instead of indexing a dead replica.
                    let r = self.pick_replica(tier);
                    self.requests[i].replica[tier] = r;
                    r as usize
                }
            }
        } else {
            let r = self.pick_replica(tier);
            self.requests[i].replica[tier] = r;
            r as usize
        };
        // Injected faults act at the admission point: a crashed tier
        // behaves like a full backlog, a flaky link drops the message with
        // the configured probability. Both hit the whole replica set (the
        // fault models the tier's shared ingress, not one instance).
        if self.tier_down[tier] {
            self.drop_message(req, tier, rep, visit);
            return;
        }
        if self.drop_prob[tier] > 0.0 {
            let p = self.drop_prob[tier];
            if self.rng_faults.chance(p) {
                self.drop_message(req, tier, rep, visit);
                return;
            }
        }
        // A flaky-link burst targets one replica's ingress: checked after
        // replica resolution, and the rng is drawn only while a window is
        // open, so clean runs consume nothing from the fault stream.
        let rp = self.replica_drop[tier][rep];
        if rp > 0.0 && self.rng_faults.chance(rp) {
            self.drop_message(req, tier, rep, visit);
            return;
        }
        // Admission-time load shedding: reject fast instead of queueing
        // work that is already doomed. Depth is the chosen replica's.
        if let Some(sp) = self.cfg.tiers[tier].shed {
            let depth = self.tiers[tier].replicas[rep].depth();
            let age = self.now.saturating_since(self.requests[i].injected_at);
            if sp.should_shed(depth, age) {
                self.shed_request(req, tier, rep);
                return;
            }
        }
        // AIMD adaptive concurrency limit: reject once the replica's
        // in-system count reaches the current (latency-derived) limit.
        if let Some(lim) = self.tiers[tier].aimd.as_ref() {
            if self.tiers[tier].replicas[rep].depth() >= lim.limit() {
                self.shed_request(req, tier, rep);
                return;
            }
        }
        // The overload governor's brake: a hard admission ceiling installed
        // at retry-storm onset, shedding excess work to break the storm's
        // sustained-overload fixed point.
        if let Some(cap) = self.governor_limit[tier] {
            if self.tiers[tier].replicas[rep].depth() >= cap {
                self.shed_request(req, tier, rep);
                return;
            }
        }
        let mut spawn_at: Option<SimTime> = None;
        let admit = {
            let rt = &mut self.tiers[tier].replicas[rep];
            match &mut rt.state {
                TierState::Sync(pg) => {
                    if pg.try_acquire() {
                        Admit::Start(Occupancy::Thread)
                    } else {
                        if pg.wants_spawn() {
                            pg.begin_spawn();
                            spawn_at = Some(self.now + pg.spawn_delay());
                        }
                        match rt.backlog.offer(Pending { req, visit }) {
                            Ok(()) => Admit::Backlogged,
                            Err(_) => Admit::Dropped,
                        }
                    }
                }
                TierState::Async(el) => {
                    if el.try_admit() {
                        Admit::Start(Occupancy::Admission)
                    } else {
                        Admit::Dropped
                    }
                }
            }
        };
        if let Some(at) = spawn_at {
            self.queue.push(
                at,
                Event::SpawnDone {
                    tier: tier as u8,
                    replica: rep as u8,
                },
            );
        }
        match admit {
            Admit::Start(occ) => {
                self.requests[i].occupying[tier] = occ;
                self.on_admitted(req, tier);
                self.record_queue(tier, rep);
                self.begin_visit(req, tier, visit);
            }
            Admit::Backlogged => {
                self.tracer.record(
                    self.requests[i].trace,
                    self.now,
                    TraceEventKind::Enqueue {
                        tier: TierId::from(tier),
                        replica: ReplicaId::from(rep),
                    },
                );
                self.on_admitted(req, tier);
                self.record_queue(tier, rep);
            }
            Admit::Dropped => self.drop_message(req, tier, rep, visit),
        }
    }

    /// A message was accepted at `tier`: reset the per-message retry state
    /// and let the hop's breaker see the success (inner hops only — tier
    /// 0's breaker is the client's, whose success is request completion).
    fn on_admitted(&mut self, req: ReqId, tier: usize) {
        let i = self.live_expect(req);
        self.requests[i].retrans = RetransmitState::new();
        self.requests[i].hop_attempts = 0;
        self.requests[i].arrived_at[tier] = self.now;
        if tier > 0 {
            let now = self.now;
            if let Some(br) = self.tiers[tier].hop_breaker.as_mut() {
                br.on_success(now);
            }
        }
    }

    fn begin_visit(&mut self, req: ReqId, tier: usize, visit: u16) {
        let i = self.live_expect(req);
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::ServiceStart {
                tier: TierId::from(tier),
                replica: ReplicaId::from(self.requests[i].replica[tier] as usize),
                visit,
            },
        );
        self.requests[i].slice_idx[tier] = 0;
        self.requests[i].active_visit[tier] = visit;
        self.exec_slice(req, tier, visit, 0);
    }

    fn exec_slice(&mut self, req: ReqId, tier: usize, visit: u16, slice: usize) {
        let i = self.live_expect(req);
        let demand = self.requests[i].plan.slices_at(tier, visit as usize)[slice];
        let rep = self.requests[i].replica[tier] as usize;
        let rt = &mut self.tiers[tier].replicas[rep];
        let active = match &rt.state {
            TierState::Sync(pg) => pg.busy(),
            TierState::Async(el) => el.workers() as usize,
        };
        let effective = self.cfg.tiers[tier]
            .overhead
            .effective_demand(demand, active);
        // Gray degradation stretches this replica's service time by the
        // window's rate multiplier. The scale is skipped entirely at the
        // nominal 1.0 so ungraded slices keep their exact demands.
        let m = self.rate_mult[tier][rep];
        let effective = if m == 1.0 {
            effective
        } else {
            SimDuration::from_micros((effective.as_micros() as f64 * m) as u64)
        };
        let rt = &mut self.tiers[tier].replicas[rep];
        // Busy segments stream straight into the utilization series; no
        // per-slice segment Vec is built.
        let util = &mut rt.util;
        let end = rt
            .cpu
            .run_with(self.now, effective, |s, e| util.record_busy(s, e));
        self.queue.push(
            end,
            Event::SliceDone {
                req,
                tier: tier as u8,
                visit,
            },
        );
    }

    fn on_slice_done(&mut self, req: ReqId, tier: usize, visit: u16) {
        let Some(i) = self.live(req) else {
            return;
        };
        let slice = self.requests[i].slice_idx[tier];
        let total = self.requests[i].plan.slices_at(tier, visit as usize).len();
        if slice + 1 == total {
            self.finish_visit(req, tier, visit);
        } else {
            self.issue_call(req, tier);
        }
    }

    /// Issues the next downstream call from `tier` (the request's thread,
    /// if sync, stays held). A single child is the RPC hop; several children
    /// scatter one arm per child.
    fn issue_call(&mut self, req: ReqId, tier: usize) {
        let i = self.live_expect(req);
        if self.cfg.shape.children[tier].len() > 1 {
            self.do_scatter(req, tier);
            return;
        }
        let target = self.cfg.shape.children[tier][0];
        let target_visit = self.requests[i].next_visit[target];
        self.requests[i].next_visit[target] = target_visit + 1;
        let rep = self.requests[i].replica[tier] as usize;
        if self.tiers[tier].replicas[rep].conn_pool.is_some() {
            let token = self.next_token;
            self.next_token += 1;
            let lease = self.tiers[tier].replicas[rep]
                .conn_pool
                .as_mut()
                .expect("pool checked above")
                .acquire(token);
            match lease {
                Lease::Granted => {
                    self.requests[i].conn_held[tier] = true;
                    self.send(req, target, target_visit);
                }
                Lease::Queued => {
                    self.parked.insert(token, (req, target, target_visit));
                }
            }
        } else {
            self.send(req, target, target_visit);
        }
    }

    /// Scatters from `tier` to every child at once: one *arm* sub-request
    /// per child, each walking its own subtree. The parent parks (its
    /// thread, if sync, stays held — scatter-gather is an RPC construct)
    /// until `quorum[tier]` arms have replied.
    fn do_scatter(&mut self, req: ReqId, tier: usize) {
        let i = self.live_expect(req);
        let kids = self.cfg.shape.children[tier].clone();
        let quorum = self.cfg.shape.quorum[tier];
        debug_assert!(quorum >= 1 && quorum <= kids.len());
        self.requests[i].fan_awaiting = quorum as u32;
        self.requests[i].fan_live = kids.len() as u32;
        self.requests[i].fan_node = tier as u8;
        let (injected_at, class, plan, attempt, trace) = {
            let r = &self.requests[i];
            (r.injected_at, r.class, r.plan.share(), r.attempt, r.trace)
        };
        for c in kids {
            // Arms are slab requests of their own: alloc after capturing the
            // parent's ingredients (alloc may grow the slab and move it).
            let arm = self.alloc_request(injected_at, None, class, plan.share(), attempt);
            let j = arm.slot as usize;
            self.requests[j].arm_parent = Some(req);
            self.requests[j].arm_root = c as u8;
            if trace != TRACE_NONE {
                // Arms append into the parent's timeline; the arm's slot
                // holds its own reference like any attempt.
                self.tracer.retain(trace);
                self.requests[j].trace = trace;
            }
            self.send(arm, c, 0);
        }
    }

    /// A scatter arm's reply reached the parent waiting at its fan-out
    /// node: count it against the quorum and resume the parent's visit once
    /// the quorum is met. Late arms beyond the quorum land here harmlessly.
    fn on_arm_reply(&mut self, parent: ReqId) {
        let Some(i) = self.live(parent) else {
            return;
        };
        if self.requests[i].fan_awaiting == 0 {
            return; // quorum already met; this is a straggler's reply
        }
        self.requests[i].fan_live -= 1;
        self.requests[i].fan_awaiting -= 1;
        if self.requests[i].fan_awaiting > 0 {
            return;
        }
        let fan = self.requests[i].fan_node as usize;
        let next = self.requests[i].slice_idx[fan] + 1;
        self.requests[i].slice_idx[fan] = next;
        let visit = self.requests[i].active_visit[fan];
        self.exec_slice(parent, fan, visit, next);
    }

    /// A scatter arm died (drops exhausted, shed): if the surviving arms
    /// can no longer form the quorum, the parent fails.
    fn on_arm_failed(&mut self, parent: ReqId) {
        let Some(i) = self.live(parent) else {
            return;
        };
        if self.requests[i].fan_awaiting == 0 {
            return;
        }
        self.requests[i].fan_live -= 1;
        if self.requests[i].fan_live < self.requests[i].fan_awaiting {
            self.requests[i].fan_awaiting = 0;
            self.fail_request(parent);
        }
    }

    fn finish_visit(&mut self, req: ReqId, tier: usize, visit: u16) {
        let i = self.live_expect(req);
        let rep = self.requests[i].replica[tier] as usize;
        let released_thread = {
            match &mut self.tiers[tier].replicas[rep].state {
                TierState::Sync(pg) => {
                    pg.release();
                    true
                }
                TierState::Async(el) => {
                    el.complete();
                    false
                }
            }
        };
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::ServiceEnd {
                tier: TierId::from(tier),
                replica: ReplicaId::from(rep),
                visit,
            },
        );
        self.requests[i].occupying[tier] = Occupancy::None;
        // A finished visit at the monitored tier is a passive reply signal:
        // residence time (admission → visit done) feeds the detector's
        // latency EWMA and its phi-accrual inter-reply clock.
        if let Some(hr) = self.health.as_mut() {
            if hr.tier == tier {
                let sample = self.now.saturating_since(self.requests[i].arrived_at[tier]);
                hr.det.on_reply(rep, self.now, sample);
            }
        }
        // Feed the per-tier residence time (admission → visit done) to the
        // AIMD limiter: congestion shows up as inflated residence.
        if self.tiers[tier].aimd.is_some() {
            let sample = self.now.saturating_since(self.requests[i].arrived_at[tier]);
            self.tiers[tier]
                .aimd
                .as_mut()
                .expect("checked above")
                .on_sample(sample);
        }
        if released_thread {
            self.drain_backlog(tier, rep);
        }
        self.record_queue(tier, rep);
        if self.requests[i].arm_parent.is_some() && tier == self.requests[i].arm_root as usize {
            // The arm's subtree is done: reply to the parent's fan-out node
            // and retire the arm now — the reply event carries only the
            // parent handle, so nothing keeps the slot alive.
            let parent = self.requests[i].arm_parent.expect("checked above");
            self.queue
                .push(self.now + self.cfg.hop_delay, Event::ArmReply { parent });
            self.free_request(i);
            return;
        }
        if tier == 0 {
            self.complete_request(req);
        } else {
            // The reply heads upstream: a cancel arriving at this tier or
            // deeper has been outrun.
            let up = self.cfg.shape.parent[tier].expect("non-root tier has a parent");
            self.hot[i].head = up as u8;
            self.queue.push(
                self.now + self.cfg.hop_delay,
                Event::ReplyArrive {
                    req,
                    tier: up as u8,
                },
            );
        }
    }

    fn on_reply(&mut self, req: ReqId, tier: usize) {
        let Some(i) = self.live(req) else {
            return;
        };
        // A reply from downstream frees the caller's pooled connection; a
        // parked call (its thread already held) inherits it and fires.
        if self.requests[i].conn_held[tier] {
            self.requests[i].conn_held[tier] = false;
            let rep = self.requests[i].replica[tier] as usize;
            self.release_conn(tier, rep);
        }
        let next = self.requests[i].slice_idx[tier] + 1;
        self.requests[i].slice_idx[tier] = next;
        let visit = self.requests[i].active_visit[tier];
        self.exec_slice(req, tier, visit, next);
    }

    fn release_conn(&mut self, tier: usize, rep: usize) {
        let handover = self.tiers[tier].replicas[rep]
            .conn_pool
            .as_mut()
            .expect("release_conn on tier without pool")
            .release();
        if let Some(token) = handover {
            let (r2, target, visit) = self
                .parked
                .remove(&token)
                .expect("pool handed over an unknown token");
            // A parked waiter holds its upstream thread, which keeps the
            // request live until the connection arrives.
            let i = self.live_expect(r2);
            self.requests[i].conn_held[tier] = true;
            self.send(r2, target, visit);
        }
    }

    fn drain_backlog(&mut self, tier: usize, rep: usize) {
        loop {
            let pending = {
                let rt = &mut self.tiers[tier].replicas[rep];
                match &mut rt.state {
                    TierState::Sync(pg) => {
                        if pg.is_exhausted() {
                            None
                        } else {
                            rt.backlog.pop().inspect(|_p| {
                                let ok = pg.try_acquire();
                                debug_assert!(ok, "idle thread disappeared");
                            })
                        }
                    }
                    TierState::Async(_) => None,
                }
            };
            let Some(p) = pending else { break };
            // A backlogged request can only leave the backlog through this
            // pop, so its handle is live by construction.
            let i = self.live_expect(p.req);
            self.requests[i].occupying[tier] = Occupancy::Thread;
            self.begin_visit(p.req, tier, p.visit);
        }
    }

    fn on_spawn_done(&mut self, tier: usize, rep: usize) {
        match &mut self.tiers[tier].replicas[rep].state {
            TierState::Sync(pg) => pg.complete_spawn(),
            TierState::Async(_) => unreachable!("async tiers do not spawn"),
        }
        self.drain_backlog(tier, rep);
        self.record_queue(tier, rep);
    }

    fn drop_message(&mut self, req: ReqId, tier: usize, rep: usize, visit: u16) {
        let i = self.live_expect(req);
        // A drop at the monitored tier is a passive error signal: the
        // detector's error EWMA moves toward 1 for the dropping replica.
        if let Some(hr) = self.health.as_mut() {
            if hr.tier == tier {
                hr.det.on_drop(rep, self.now);
            }
        }
        self.drops_total += 1;
        self.tiers[tier].replicas[rep].drops_total += 1;
        self.tiers[tier].replicas[rep].drops.add(self.now, 1.0);
        self.class_stats
            .entry(self.requests[i].class)
            .or_default()
            .drops += 1;
        self.requests[i].drops.push(DropRecord {
            tier,
            replica: ReplicaId::from(rep),
            at: self.now,
        });
        // Record the drop with its retransmit ordinal *before* the retry
        // decision mutates the counter: ordinal 0 is the original send,
        // ordinal n the n-th retransmit of this message.
        let app_hop = tier > 0 && self.cfg.tiers[tier].caller_policy.is_some();
        let retransmit_no = if app_hop {
            self.requests[i].hop_attempts as u8
        } else {
            self.requests[i].retrans.attempts() as u8
        };
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::SynDrop {
                tier: TierId::from(tier),
                replica: ReplicaId::from(rep),
                retransmit_no,
            },
        );
        // The governor watches the retransmit *ordinal* (1-based: 1 = an
        // original send dropped); a climbing window maximum is the 3/6/9 s
        // ladder being climbed by the same connections.
        if let Some(cr) = self.control.as_mut() {
            cr.window_max_ordinal = cr.window_max_ordinal.max(retransmit_no.saturating_add(1));
        }
        // A caller policy on an inner hop replaces the kernel retransmit
        // schedule with app-controlled backoff + budget + breaker.
        if app_hop {
            self.app_hop_drop(req, tier, rep, visit);
            return;
        }
        let decision = self.requests[i]
            .retrans
            .on_drop(&self.cfg.retransmit, self.now);
        match decision {
            RetryDecision::RetryAt(t) => {
                self.queue.push(
                    t,
                    Event::Arrival {
                        req,
                        tier: tier as u8,
                        visit,
                    },
                );
            }
            RetryDecision::GiveUp => self.fail_request(req),
        }
    }

    /// A message into `tier` was dropped and the hop has a caller policy:
    /// count the failure on the hop breaker, then either resend after
    /// app-level backoff (if retries, budget and breaker all allow) or give
    /// the request up.
    fn app_hop_drop(&mut self, req: ReqId, tier: usize, rep: usize, visit: u16) {
        let i = self.live_expect(req);
        let now = self.now;
        if let Some(br) = self.tiers[tier].hop_breaker.as_mut() {
            br.on_failure(now);
        }
        let attempt = self.requests[i].hop_attempts;
        // `RetryPolicy` is `Copy`: no composite `CallerPolicy` clone here.
        let retry = self.cfg.tiers[tier]
            .caller_policy
            .as_ref()
            .expect("checked by caller")
            .retry;
        let Some(retry) = retry.filter(|r| r.allows(attempt)) else {
            self.fail_request(req);
            return;
        };
        if let Some(bucket) = self.tiers[tier].hop_bucket.as_mut() {
            if !bucket.try_withdraw(now) {
                self.tiers[tier].res.budget_exhausted += 1;
                self.fail_request(req);
                return;
            }
        }
        if let Some(br) = self.tiers[tier].hop_breaker.as_mut() {
            if !br.try_acquire(now) {
                self.shed_request(req, tier, rep);
                return;
            }
        }
        self.tiers[tier].res.retries += 1;
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::AppRetry {
                tier: TierId::from(tier),
            },
        );
        self.requests[i].hop_attempts = attempt + 1;
        let backoff = retry.backoff_for(attempt, self.rng_jitter.next_f64());
        self.queue.push(
            now + backoff,
            Event::Arrival {
                req,
                tier: tier as u8,
                visit,
            },
        );
    }

    /// The client's per-attempt timer fired: the attempt becomes an orphan
    /// (it keeps consuming resources downstream — the retry-storm
    /// amplifier) and the retry stack decides whether a fresh attempt goes
    /// out.
    fn on_attempt_timeout(&mut self, req: ReqId) {
        let Some(i) = self.live(req) else {
            return;
        };
        if self.hot[i].orphan {
            return;
        }
        self.hot[i].orphan = true;
        self.tiers[0].res.timeouts += 1;
        let h = self.requests[i].trace;
        let attempt = self.requests[i].attempt;
        self.tracer
            .record(h, self.now, TraceEventKind::AttemptTimeout { attempt });
        let now = self.now;
        if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
            br.on_failure(now);
        }
        if !self.try_client_retry(req) {
            self.failed += 1;
            let latency = self.now - self.requests[i].injected_at;
            self.tracer
                .set_terminal(h, self.now, TerminalClass::Failed, latency);
            self.client_next(req);
        }
        // With a cancel policy the abandoned attempt does not linger as an
        // orphan eating capacity until it finishes on its own (the classic
        // retry-storm leak): a cancel chases it down and reclaims the
        // threads and backlog slots it holds.
        if self.cfg.tiers[0]
            .caller_policy
            .as_ref()
            .is_some_and(|p| p.cancel.is_some())
        {
            self.start_cancel(req);
        }
    }

    /// Consults the client's retry policy, budget and breaker; on success
    /// schedules [`Event::RetryFire`] after the capped, jittered backoff.
    fn try_client_retry(&mut self, req: ReqId) -> bool {
        let i = self.live_expect(req);
        let Some(policy) = self.cfg.tiers[0].caller_policy.as_ref() else {
            return false;
        };
        let attempt = self.requests[i].attempt;
        let Some(retry) = policy.retry.filter(|r| r.allows(attempt)) else {
            return false;
        };
        let now = self.now;
        if let Some(bucket) = self.tiers[0].hop_bucket.as_mut() {
            if !bucket.try_withdraw(now) {
                self.tiers[0].res.budget_exhausted += 1;
                return false;
            }
        }
        if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
            if !br.try_acquire(now) {
                return false;
            }
        }
        self.tiers[0].res.retries += 1;
        let backoff = retry.backoff_for(attempt, self.rng_jitter.next_f64());
        // Capture the relaunch ingredients now: the current attempt's slot
        // is freed on its terminal path, typically before the backoff ends.
        let r = &self.requests[i];
        let ticket = RetryTicket {
            injected_at: r.injected_at,
            client: r.client,
            class: r.class,
            plan: r.plan.share(),
            attempt: attempt + 1,
            trace: r.trace,
        };
        // The ticket keeps the trace alive across the backoff (the current
        // attempt's slot — and its reference — is freed before RetryFire).
        self.tracer.retain(ticket.trace);
        let tid = self.tickets.len() as u32;
        self.tickets.push(ticket);
        self.queue
            .push(now + backoff, Event::RetryFire { ticket: tid });
        true
    }

    /// Launches the next attempt of the logical request whose previous
    /// attempt was `orig`: a fresh [`RequestState`] inheriting the plan,
    /// class, client and — crucially — the original injection time, so
    /// end-to-end latency spans all attempts. `injected` is *not*
    /// incremented: a retry is the same logical request.
    fn on_retry_fire(&mut self, ticket: u32) {
        let t = &self.tickets[ticket as usize];
        let (class, plan, client, injected_at, attempt, trace) = (
            t.class,
            t.plan.share(),
            t.client,
            t.injected_at,
            t.attempt,
            t.trace,
        );
        let id = self.alloc_request(injected_at, client, class, plan, attempt);
        // The ticket's reference transfers to the new attempt (a ticket
        // fires exactly once), so no retain/release pair is needed here.
        self.requests[id.slot as usize].trace = trace;
        self.tracer
            .record(trace, self.now, TraceEventKind::ClientSend { attempt });
        self.arm_attempt_timer(id);
        self.send(id, 0, 0);
    }

    /// Terminally rejects `req` at `tier`'s admission point (shed policy or
    /// open hop breaker): resources are freed and the request counts as
    /// shed, not failed — unless the attempt is already an orphan, in which
    /// case the logical outcome was decided at timeout time.
    fn shed_request(&mut self, req: ReqId, tier: usize, rep: usize) {
        let i = self.live_expect(req);
        self.tiers[tier].res.shed += 1;
        self.tracer.record(
            self.requests[i].trace,
            self.now,
            TraceEventKind::Shed {
                tier: TierId::from(tier),
                replica: ReplicaId::from(rep),
            },
        );
        self.release_resources(req);
        // A shed arm feeds the parent's quorum bookkeeping, not a client.
        if let Some(parent) = self.requests[i].arm_parent {
            self.free_request(i);
            self.on_arm_failed(parent);
            return;
        }
        // Like `fail_request`: shedding one hedged attempt does not decide
        // the logical request — the race continues (or the deadline does).
        if self.requests[i].logical != LOGICAL_NONE {
            self.unlink_from_logical(req);
            self.free_request(i);
            return;
        }
        if !self.hot[i].orphan {
            self.shed += 1;
            self.class_stats
                .entry(self.requests[i].class)
                .or_default()
                .shed += 1;
            let latency = self.now - self.requests[i].injected_at;
            self.tracer.set_terminal(
                self.requests[i].trace,
                self.now,
                TerminalClass::Shed,
                latency,
            );
            let now = self.now;
            if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
                br.on_failure(now);
            }
            self.client_next(req);
        }
        self.free_request(i);
    }

    /// A fault window opens.
    fn on_fault_begin(&mut self, idx: usize) {
        match self.cfg.faults.faults()[idx] {
            Fault::Crash { tier, .. } => self.tier_down[tier] = true,
            Fault::DropMessages { tier, prob, .. } => self.drop_prob[tier] = prob,
            Fault::SlowHops { tier, extra, .. } => self.extra_hop[tier] += extra,
            // Gray windows are stepped piecewise-constant: each window
            // *sets* its level (no stacking), and the plan's push order
            // stamps an adjacent window's End before the next Begin at a
            // shared boundary, so ramps hand over cleanly.
            Fault::SlowReplica {
                tier,
                replica,
                factor,
                ..
            } => self.rate_mult[tier][replica] = factor,
            Fault::FlakyReplica {
                tier,
                replica,
                prob,
                ..
            } => self.replica_drop[tier][replica] = prob,
            Fault::StuckWorkers { tier, count, .. } => {
                // Wedge up to `count` workers by occupying their slots; the
                // tier may already be too busy to give up that many. On a
                // replica set the fault wedges replica 0 — a single sick
                // instance, the scenario the balancer sweep studies.
                let mut got = 0;
                match &mut self.tiers[tier].replicas[0].state {
                    TierState::Sync(pg) => {
                        while got < count && pg.try_acquire() {
                            got += 1;
                        }
                    }
                    TierState::Async(el) => {
                        while got < count && el.try_admit() {
                            got += 1;
                        }
                    }
                }
                self.stuck_acquired[idx] = got;
                self.record_queue(tier, 0);
            }
        }
    }

    /// A fault window closes.
    fn on_fault_end(&mut self, idx: usize) {
        match self.cfg.faults.faults()[idx] {
            Fault::Crash { tier, .. } => self.tier_down[tier] = false,
            Fault::DropMessages { tier, .. } => self.drop_prob[tier] = 0.0,
            Fault::SlowReplica { tier, replica, .. } => self.rate_mult[tier][replica] = 1.0,
            Fault::FlakyReplica { tier, replica, .. } => self.replica_drop[tier][replica] = 0.0,
            Fault::SlowHops { tier, extra, .. } => {
                self.extra_hop[tier] = self.extra_hop[tier].saturating_sub(extra);
            }
            Fault::StuckWorkers { tier, .. } => {
                let got = self.stuck_acquired[idx];
                self.stuck_acquired[idx] = 0;
                let released_thread = match &mut self.tiers[tier].replicas[0].state {
                    TierState::Sync(pg) => {
                        for _ in 0..got {
                            pg.release();
                        }
                        true
                    }
                    TierState::Async(el) => {
                        for _ in 0..got {
                            el.complete();
                        }
                        false
                    }
                };
                if released_thread {
                    self.drain_backlog(tier, 0);
                }
                self.record_queue(tier, 0);
            }
        }
    }

    fn fail_request(&mut self, req: ReqId) {
        let i = self.live_expect(req);
        self.release_resources(req);
        // A dead arm feeds the parent's quorum bookkeeping, not a client.
        if let Some(parent) = self.requests[i].arm_parent {
            self.free_request(i);
            self.on_arm_failed(parent);
            return;
        }
        // A hedged attempt dying (retransmits exhausted) is not a logical
        // failure: its siblings — or the hedge ladder — may still win, and
        // the logical deadline is the backstop. The attempt just drops out
        // of the race.
        if self.requests[i].logical != LOGICAL_NONE {
            self.unlink_from_logical(req);
            self.free_request(i);
            return;
        }
        if !self.hot[i].orphan {
            if self.cfg.tiers[0].caller_policy.is_some() {
                let now = self.now;
                if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
                    br.on_failure(now);
                }
                if self.try_client_retry(req) {
                    self.free_request(i);
                    return;
                }
            }
            self.failed += 1;
            let latency = self.now - self.requests[i].injected_at;
            self.tracer.set_terminal(
                self.requests[i].trace,
                self.now,
                TerminalClass::Failed,
                latency,
            );
            self.client_next(req);
        }
        self.free_request(i);
    }

    /// Frees every thread, admission slot and pooled connection `req`
    /// holds, upstream-last so handed-over connections find their takers.
    fn release_resources(&mut self, req: ReqId) {
        let i = self.live_expect(req);
        // Node ids are preorder, so the reverse walk still releases
        // downstream holdings before their callers' pooled connections.
        for tier in (0..self.tiers.len()).rev() {
            let rep = self.requests[i].replica[tier] as usize;
            if self.requests[i].conn_held[tier] {
                self.requests[i].conn_held[tier] = false;
                self.release_conn(tier, rep);
            }
            let occ = self.requests[i].occupying[tier];
            match occ {
                Occupancy::Thread => {
                    match &mut self.tiers[tier].replicas[rep].state {
                        TierState::Sync(pg) => pg.release(),
                        TierState::Async(_) => unreachable!("thread occupancy on async tier"),
                    }
                    self.requests[i].occupying[tier] = Occupancy::None;
                    self.drain_backlog(tier, rep);
                    self.record_queue(tier, rep);
                }
                Occupancy::Admission => {
                    match &mut self.tiers[tier].replicas[rep].state {
                        TierState::Async(el) => el.complete(),
                        TierState::Sync(_) => unreachable!("admission occupancy on sync tier"),
                    }
                    self.requests[i].occupying[tier] = Occupancy::None;
                    self.record_queue(tier, rep);
                }
                Occupancy::None => {}
            }
        }
    }

    fn complete_request(&mut self, req: ReqId) {
        let i = self.live_expect(req);
        if self.hot[i].orphan {
            // The reply nobody is waiting for: all that work was wasted.
            self.tiers[0].res.orphan_completions += 1;
            self.unlink_from_logical(req);
            self.free_request(i);
            return;
        }
        // A hedged attempt finishing first *wins* its logical request: the
        // logical resolves as completed exactly once, and every still-live
        // sibling becomes a loser — orphaned, and (with a cancel policy)
        // chased down so it stops eating capacity.
        let lid = self.requests[i].logical;
        if lid != LOGICAL_NONE {
            self.logicals[lid as usize].resolved = true;
            let losers: Vec<ReqId> = self.logicals[lid as usize]
                .attempts
                .iter()
                .copied()
                .filter(|a| *a != req)
                .collect();
            let cancel = self.cfg.tiers[0]
                .caller_policy
                .as_ref()
                .and_then(|p| p.cancel);
            for loser in losers {
                if let Some(j) = self.live(loser) {
                    self.hot[j].orphan = true;
                    if cancel.is_some() {
                        self.start_cancel(loser);
                    }
                }
            }
        }
        let now = self.now;
        if let Some(br) = self.tiers[0].hop_breaker.as_mut() {
            br.on_success(now);
        }
        self.completed += 1;
        let latency = self.now - self.requests[i].injected_at;
        self.tracer.set_terminal(
            self.requests[i].trace,
            self.now,
            TerminalClass::Completed,
            latency,
        );
        self.latency.record(latency);
        if let Some(cr) = self.control.as_mut() {
            cr.window.record(latency);
        }
        if let Some(reg) = self.metrics.as_mut() {
            reg.record_latency(self.now, latency);
        }
        let stats = self.class_stats.entry(self.requests[i].class).or_default();
        stats.completed += 1;
        stats.latency_sum_us += u128::from(latency.as_micros());
        if latency >= SimDuration::from_millis(ntier_telemetry::VLRT_THRESHOLD_MS) {
            stats.vlrt += 1;
            self.vlrt_total += 1;
            self.vlrt_by_completion.add(self.now, 1.0);
            if let Some(first_drop) = self.requests[i].drops.iter().next() {
                self.tiers[first_drop.tier].replicas[first_drop.replica.index()]
                    .vlrt
                    .add(first_drop.at, 1.0);
            }
        }
        self.client_next(req);
        self.unlink_from_logical(req);
        self.free_request(i);
    }

    /// Closed-loop continuation: the owning client thinks, then sends again.
    fn client_next(&mut self, req: ReqId) {
        let client = self.requests[self.live_expect(req)].client;
        self.schedule_client_next(client);
    }

    /// [`Self::client_next`] for outcomes with no [`RequestState`] (a
    /// breaker shed at injection time).
    fn schedule_client_next(&mut self, client: Option<u32>) {
        let Some(client) = client else {
            return;
        };
        let Workload::Closed { spec, .. } = &self.workload else {
            return;
        };
        let think = spec.think_time(&mut self.rng_clients);
        let at = self.now + think;
        if at <= SimTime::ZERO + self.horizon {
            self.queue.push(at, Event::ClientSend { client });
        }
    }

    /// Folds the health detector's decision log into the controller's: one
    /// time-ordered stream (controller first on ties), summed ticks. A run
    /// with either plane alone passes its log through untouched, and a run
    /// with neither yields `None` — existing reports unchanged.
    fn merge_logs(ctl: Option<ControlLog>, health: Option<ControlLog>) -> Option<ControlLog> {
        let (mut c, h) = match (ctl, health) {
            (Some(c), Some(h)) => (c, h),
            (c, h) => return c.or(h),
        };
        let mut merged = Vec::with_capacity(c.decisions.len() + h.decisions.len());
        let mut rest = h.decisions.into_iter().peekable();
        for d in c.decisions {
            while rest.peek().is_some_and(|x| x.at < d.at) {
                merged.push(rest.next().expect("peeked"));
            }
            merged.push(d);
        }
        merged.extend(rest);
        c.decisions = merged;
        c.ticks += h.ticks;
        Some(c)
    }

    fn record_queue(&mut self, tier: usize, rep: usize) {
        let r = &mut self.tiers[tier].replicas[rep];
        let depth = r.depth();
        if depth > r.peak_queue {
            r.peak_queue = depth;
        }
        r.queue_depth.record(self.now, depth as f64);
    }

    fn into_report(mut self) -> RunReport {
        let window = SimDuration::from_millis(ntier_telemetry::MONITOR_WINDOW_MS);
        let control = Self::merge_logs(
            self.control.take().map(|cr| cr.ctl.into_log()),
            self.health.take().map(|hr| hr.log),
        );
        // Harvest breaker transition counts into the per-hop counters, then
        // aggregate the whole-run view.
        for rt in &mut self.tiers {
            if let Some(br) = &rt.hop_breaker {
                rt.res.breaker_transitions = br.transitions();
            }
        }
        let resilience = self
            .tiers
            .iter()
            .fold(ResilienceStats::default(), |acc, rt| acc.merge(&rt.res));
        let horizon = self.horizon;
        let tiers = self
            .tiers
            .into_iter()
            .zip(self.cfg.tiers.iter())
            .enumerate()
            .map(|(idx, (node, tc))| {
                let reps: Vec<ReplicaReport> = node
                    .replicas
                    .into_iter()
                    .enumerate()
                    .map(|(r, rep)| ReplicaReport {
                        id: ReplicaId::from(r),
                        spawns: rep.spawns(),
                        queue_depth: rep.queue_depth,
                        drops: rep.drops,
                        vlrt: rep.vlrt,
                        util: rep.util,
                        interferer_util: tc.stalls_for(r).interferer_utilization(window, horizon),
                        drops_total: rep.drops_total,
                        peak_queue: rep.peak_queue,
                    })
                    .collect();
                let mut reps = reps;
                if reps.len() == 1 {
                    // Single instance: the tier-level fields *are* the
                    // instance's data — byte-stable with the pre-replication
                    // reports.
                    let only = reps.pop().expect("one replica");
                    TierReport {
                        id: TierId::from(idx),
                        name: tc.name.clone(),
                        arch: tc.kind.label(),
                        capacity: tc.admission_capacity(),
                        queue_depth: only.queue_depth,
                        drops: only.drops,
                        vlrt: only.vlrt,
                        util: only.util,
                        interferer_util: only.interferer_util,
                        drops_total: only.drops_total,
                        peak_queue: only.peak_queue,
                        spawns: only.spawns,
                        resilience: node.res,
                        replicas: Vec::new(),
                    }
                } else {
                    // Replica set: the tier-level view is the aggregate —
                    // pooled utilization, summed windows, max peak.
                    let mut queue_depth = reps[0].queue_depth.clone();
                    let mut drops = reps[0].drops.clone();
                    let mut vlrt = reps[0].vlrt.clone();
                    let mut util = reps[0].util.clone();
                    for rep in &reps[1..] {
                        queue_depth.absorb(&rep.queue_depth);
                        drops.absorb(&rep.drops);
                        vlrt.absorb(&rep.vlrt);
                        util.absorb(&rep.util);
                    }
                    let n = reps.len();
                    let windows = reps
                        .iter()
                        .map(|r| r.interferer_util.len())
                        .max()
                        .unwrap_or(0);
                    let interferer_util = (0..windows)
                        .map(|w| {
                            reps.iter()
                                .map(|r| r.interferer_util.get(w).copied().unwrap_or(0.0))
                                .sum::<f64>()
                                / n as f64
                        })
                        .collect();
                    TierReport {
                        id: TierId::from(idx),
                        name: tc.name.clone(),
                        arch: tc.kind.label(),
                        capacity: tc.admission_capacity() * n,
                        queue_depth,
                        drops,
                        vlrt,
                        util,
                        interferer_util,
                        drops_total: reps.iter().map(|r| r.drops_total).sum(),
                        peak_queue: reps.iter().map(|r| r.peak_queue).max().unwrap_or(0),
                        spawns: reps.iter().map(|r| r.spawns).sum(),
                        resilience: node.res,
                        replicas: reps,
                    }
                }
            })
            .collect();
        let mut classes: Vec<ClassReport> = self
            .class_stats
            .iter()
            .map(|(class, s)| ClassReport {
                class,
                completed: s.completed,
                vlrt: s.vlrt,
                drops: s.drops,
                shed: s.shed,
                mean_latency: if s.completed == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_micros((s.latency_sum_us / u128::from(s.completed)) as u64)
                },
            })
            .collect();
        classes.sort_by_key(|c| c.class);
        let throughput = self.completed as f64 / self.horizon.as_secs_f64();
        RunReport {
            horizon: self.horizon,
            events: self.events_handled,
            injected: self.injected,
            completed: self.completed,
            failed: self.failed,
            shed: self.shed,
            cancelled: self.cancelled,
            in_flight_end: self.injected
                - self.completed
                - self.failed
                - self.shed
                - self.cancelled,
            throughput,
            latency: self.latency,
            vlrt_total: self.vlrt_total,
            drops_total: self.drops_total,
            tiers,
            vlrt_by_completion: self.vlrt_by_completion,
            classes,
            resilience,
            trace: self.tracer.into_log(),
            control,
            metrics: self.metrics.map(|m| *m),
            workload_fault: self.workload_fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TierSpec;
    use crate::topology::Topology;
    use ntier_interference::StallSchedule;
    use ntier_workload::BurstSchedule;

    fn tiny_sync_system() -> SystemConfig {
        Topology::three_tier(
            TierSpec::sync("Web", 4, 2),
            TierSpec::sync("App", 4, 2).with_downstream_pool(2),
            TierSpec::sync("Db", 4, 2),
        )
    }

    fn open_workload(arrivals: Vec<SimTime>) -> Workload {
        Workload::open(arrivals, RequestMix::view_story())
    }

    #[test]
    fn single_request_completes_with_correct_latency() {
        let sys = tiny_sync_system().with_hop_delay(SimDuration::ZERO);
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(1)]),
            SimDuration::from_secs(1),
            1,
        )
        .run();
        assert_eq!(report.completed, 1);
        assert_eq!(report.drops_total, 0);
        assert!(report.is_conserved());
        // view_story: 0.05ms web + 0.75ms app + 2×0.15ms db ≈ 1.1 ms
        let mean = report.latency.mean();
        assert!(
            mean >= SimDuration::from_micros(1_000) && mean <= SimDuration::from_micros(1_400),
            "mean latency {mean}"
        );
    }

    #[test]
    fn hop_delay_adds_to_latency() {
        let sys = tiny_sync_system().with_hop_delay(SimDuration::from_millis(1));
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(1)]),
            SimDuration::from_secs(1),
            1,
        )
        .run();
        // hops: client->web, web->app, 2×(app->db, db->app), app->web(reply)
        // = 7 one-way hops of 1 ms on top of ~1.1 ms of CPU.
        let mean = report.latency.mean();
        assert!(
            mean >= SimDuration::from_millis(8) && mean < SimDuration::from_millis(9),
            "mean latency {mean}"
        );
    }

    #[test]
    fn overload_without_burst_queues_but_does_not_drop() {
        let arrivals: Vec<SimTime> = (0..50).map(|i| SimTime::from_millis(i * 10)).collect();
        let report = Engine::new(
            tiny_sync_system(),
            open_workload(arrivals),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        assert_eq!(report.completed, 50);
        assert_eq!(report.drops_total, 0);
    }

    #[test]
    fn batch_beyond_capacity_drops_and_retransmits() {
        // Web capacity = 4 threads + 2 backlog = 6; a batch of 24 drops at
        // the web tier in waves of 6: retries at +3 s, +6 s, +9 s — the
        // paper's multi-modal signature.
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 24)]);
        let report = Engine::new(
            tiny_sync_system(),
            open_workload(burst.arrivals()),
            SimDuration::from_secs(12),
            1,
        )
        .run();
        assert_eq!(report.completed, 24, "{}", report.summary());
        assert!(report.drops_total > 0, "{}", report.summary());
        assert_eq!(report.tiers[0].drops_total, report.drops_total);
        assert!(report.vlrt_total > 0);
        assert!(
            report.has_mode_near(3),
            "modes: {:?}",
            report.latency_modes()
        );
        assert!(
            report.has_mode_near(6),
            "modes: {:?}",
            report.latency_modes()
        );
        assert!(
            report.has_mode_near(9),
            "modes: {:?}",
            report.latency_modes()
        );
        assert!(report.is_conserved());
    }

    #[test]
    fn stalled_app_tier_backs_up_into_web_upstream_ctqo() {
        let stall =
            StallSchedule::at_marks([SimTime::from_millis(100)], SimDuration::from_millis(500));
        let mut sys = tiny_sync_system();
        sys.tiers[1] = sys.tiers[1].clone().with_stalls(stall);
        let arrivals: Vec<SimTime> = (0..200).map(|i| SimTime::from_millis(50 + i * 3)).collect();
        let report = Engine::new(sys, open_workload(arrivals), SimDuration::from_secs(10), 1).run();
        assert!(report.tiers[0].drops_total > 0, "{}", report.summary());
        assert!(report.is_conserved());
    }

    #[test]
    fn async_tiers_absorb_the_same_batch_without_drops() {
        let sys = Topology::three_tier(
            TierSpec::asynchronous("Web", 65_535, 4),
            TierSpec::asynchronous("App", 65_535, 8),
            TierSpec::asynchronous("Db", 2_000, 8),
        );
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 200)]);
        let report = Engine::new(
            sys,
            open_workload(burst.arrivals()),
            SimDuration::from_secs(8),
            1,
        )
        .run();
        assert_eq!(report.completed, 200);
        assert_eq!(report.drops_total, 0, "{}", report.summary());
        assert_eq!(report.vlrt_total, 0);
    }

    #[test]
    fn closed_loop_obeys_interactive_law() {
        let sys = tiny_sync_system();
        let workload = Workload::closed(ClosedLoopSpec::rubbos(70), RequestMix::view_story());
        let report = Engine::new(sys, workload, SimDuration::from_secs(60), 3).run();
        // N/(Z+R) = 70/7.0 ≈ 10 req/s
        assert!(
            (8.0..12.0).contains(&report.throughput),
            "throughput {}",
            report.throughput
        );
        assert!(report.is_conserved());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let mk = || {
            Engine::new(
                tiny_sync_system(),
                Workload::closed(ClosedLoopSpec::rubbos(50), RequestMix::rubbos_browse()),
                SimDuration::from_secs(20),
                42,
            )
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.drops_total, b.drops_total);
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.tiers[1].peak_queue, b.tiers[1].peak_queue);
    }

    #[test]
    fn conn_pool_caps_outstanding_db_queries() {
        let sys = Topology::three_tier(
            TierSpec::sync("Web", 64, 64),
            TierSpec::sync("App", 64, 64).with_downstream_pool(2),
            TierSpec::sync("Db", 4, 2),
        );
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 40)]);
        let report = Engine::new(
            sys,
            open_workload(burst.arrivals()),
            SimDuration::from_secs(5),
            1,
        )
        .run();
        assert!(report.tiers[2].peak_queue <= 2, "{}", report.summary());
        assert_eq!(report.tiers[2].drops_total, 0);
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn give_up_after_retry_budget_counts_failed() {
        let mut sys = Topology::three_tier(
            TierSpec::sync("Web", 1, 0),
            TierSpec::sync("App", 1, 0),
            TierSpec::sync("Db", 1, 0),
        );
        sys.tiers[0] = sys.tiers[0].clone().with_stalls(StallSchedule::at_marks(
            [SimTime::ZERO],
            SimDuration::from_secs(30),
        ));
        let arrivals: Vec<SimTime> = (0..5).map(|i| SimTime::from_millis(1 + i)).collect();
        let report = Engine::new(sys, open_workload(arrivals), SimDuration::from_secs(30), 1).run();
        // First request takes the thread; the rest drop 4 times and give up.
        assert_eq!(report.failed, 4, "{}", report.summary());
        assert!(report.is_conserved());
    }

    #[test]
    fn five_tier_pipeline_round_trips() {
        let sys = Topology::chain(
            (0..5)
                .map(|i| TierSpec::sync(format!("T{i}"), 8, 4))
                .collect(),
        )
        .with_hop_delay(SimDuration::ZERO);
        let plan = || {
            Plan::pipeline(&[
                SimDuration::from_micros(100),
                SimDuration::from_micros(200),
                SimDuration::from_micros(300),
                SimDuration::from_micros(200),
                SimDuration::from_micros(100),
            ])
        };
        let arrivals: Vec<(SimTime, Plan)> = (0..30)
            .map(|i| (SimTime::from_millis(i * 5), plan()))
            .collect();
        let report = Engine::new(
            sys,
            Workload::open_plans(arrivals),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        assert_eq!(report.completed, 30, "{}", report.summary());
        assert_eq!(report.drops_total, 0);
        assert_eq!(report.tiers.len(), 5);
        // one lone request's latency = sum of demands = 0.9 ms
        let first = report.latency.quantile(0.01).unwrap();
        assert!(first <= SimDuration::from_millis(50), "{first}");
    }

    #[test]
    fn deep_chain_upstream_ctqo_propagates_to_tier_zero() {
        // Stall the LAST tier of a 5-tier sync chain with small pools: the
        // overflow must surface at tier 0 — CTQO propagates any depth.
        let stall =
            StallSchedule::at_marks([SimTime::from_millis(500)], SimDuration::from_millis(800));
        let mut tiers: Vec<TierSpec> = (0..5)
            .map(|i| TierSpec::sync(format!("T{i}"), 4, 2))
            .collect();
        tiers[4] = tiers[4].clone().with_stalls(stall);
        let sys = Topology::chain(tiers);
        let plan = || Plan::pipeline(&[SimDuration::from_micros(50); 5]);
        let arrivals: Vec<(SimTime, Plan)> = (0..400)
            .map(|i| (SimTime::from_millis(300 + i * 2), plan()))
            .collect();
        let report = Engine::new(
            sys,
            Workload::open_plans(arrivals),
            SimDuration::from_secs(15),
            1,
        )
        .run();
        assert!(report.tiers[0].drops_total > 0, "{}", report.summary());
        assert_eq!(report.tiers[4].drops_total, 0, "{}", report.summary());
        assert!(report.is_conserved());
    }

    #[test]
    fn crash_fault_drops_arrivals_in_window() {
        use ntier_resilience::FaultPlan;
        let sys = tiny_sync_system().with_faults(FaultPlan::none().crash(
            0,
            SimTime::from_millis(100),
            SimTime::from_millis(400),
        ));
        // One request before the window completes clean; one inside hits the
        // crashed tier, retransmits at +3 s and completes after the restart.
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(10), SimTime::from_millis(200)]),
            SimDuration::from_secs(10),
            1,
        )
        .run();
        assert_eq!(report.completed, 2, "{}", report.summary());
        assert_eq!(report.tiers[0].drops_total, 1);
        assert!(report.vlrt_total >= 1, "{}", report.summary());
        assert!(report.is_conserved());
    }

    #[test]
    fn drop_fault_with_prob_one_drops_every_message() {
        use ntier_resilience::FaultPlan;
        let sys = tiny_sync_system().with_faults(FaultPlan::none().drop_messages(
            1,
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(30),
        ));
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(10)]),
            SimDuration::from_secs(30),
            1,
        )
        .run();
        // Every attempt into the app tier dies: 1 initial + 3 retransmits.
        assert_eq!(report.failed, 1, "{}", report.summary());
        assert_eq!(report.tiers[1].drops_total, 4);
        assert!(report.is_conserved());
    }

    #[test]
    fn slow_hop_fault_adds_latency_inside_window_only() {
        use ntier_resilience::FaultPlan;
        let slow = |from_ms: u64| {
            tiny_sync_system()
                .with_hop_delay(SimDuration::ZERO)
                .with_faults(FaultPlan::none().slow_hops(
                    2,
                    SimDuration::from_millis(50),
                    SimTime::from_millis(from_ms),
                    SimTime::from_millis(from_ms + 500),
                ))
        };
        let inside = Engine::new(
            slow(0),
            open_workload(vec![SimTime::from_millis(1)]),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        let outside = Engine::new(
            slow(1_000),
            open_workload(vec![SimTime::from_millis(1)]),
            SimDuration::from_secs(2),
            1,
        )
        .run();
        // view_story visits the db twice: 2 × 50 ms of extra one-way delay.
        let delta = inside.latency.mean() - outside.latency.mean();
        assert!(
            delta >= SimDuration::from_millis(99) && delta <= SimDuration::from_millis(101),
            "delta {delta}"
        );
    }

    #[test]
    fn stuck_workers_shrink_capacity_then_restore_it() {
        use ntier_resilience::FaultPlan;
        // All 4 web threads wedge; backlog holds 2; a 3-request batch inside
        // the window parks 2 and drops 1, then completes after the window.
        let sys = tiny_sync_system().with_faults(FaultPlan::none().stuck_workers(
            0,
            4,
            SimTime::from_millis(100),
            SimTime::from_millis(600),
        ));
        let arrivals = vec![
            SimTime::from_millis(200),
            SimTime::from_millis(210),
            SimTime::from_millis(220),
        ];
        let report = Engine::new(sys, open_workload(arrivals), SimDuration::from_secs(10), 1).run();
        assert_eq!(report.completed, 3, "{}", report.summary());
        assert_eq!(report.tiers[0].drops_total, 1);
        assert!(report.is_conserved());
    }

    #[test]
    fn client_timeout_retry_completes_logical_request_once() {
        use ntier_resilience::{CallerPolicy, FaultPlan, RetryPolicy};
        // The app tier eats every message for 1 s; a 200 ms attempt timeout
        // with generous retries rides through it. Retries do not inflate
        // `injected`, and the orphaned attempts' completions are discarded.
        let policy = CallerPolicy {
            attempt_timeout: SimDuration::from_millis(200),
            retry: Some(RetryPolicy::capped(
                10,
                SimDuration::from_millis(50),
                SimDuration::from_millis(200),
            )),
            budget: None,
            breaker: None,
            hedge: None,
            cancel: None,
        };
        let sys = tiny_sync_system().with_client_policy(policy).with_faults(
            FaultPlan::none().drop_messages(1, 1.0, SimTime::ZERO, SimTime::from_secs(1)),
        );
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(10)]),
            SimDuration::from_secs(20),
            1,
        )
        .run();
        assert_eq!(report.injected, 1, "{}", report.summary());
        assert_eq!(report.completed, 1);
        assert!(report.resilience.timeouts >= 1);
        assert!(report.resilience.retries >= 1);
        assert!(report.is_conserved());
    }

    #[test]
    fn open_client_breaker_sheds_at_injection() {
        use ntier_resilience::{BreakerConfig, CallerPolicy, RetryPolicy};
        // No retries + a 1-failure breaker held open for a long time: the
        // first timeout trips it and every later injection is shed.
        let policy = CallerPolicy {
            attempt_timeout: SimDuration::from_millis(100),
            retry: Some(RetryPolicy::capped(
                0,
                SimDuration::from_millis(10),
                SimDuration::from_millis(10),
            )),
            budget: None,
            breaker: Some(BreakerConfig::new(1, SimDuration::from_secs(60))),
            hedge: None,
            cancel: None,
        };
        let mut sys = tiny_sync_system().with_client_policy(policy);
        sys.tiers[1] = sys.tiers[1].clone().with_stalls(StallSchedule::at_marks(
            [SimTime::ZERO],
            SimDuration::from_secs(30),
        ));
        let arrivals: Vec<SimTime> = (0..10)
            .map(|i| SimTime::from_millis(10 + i * 200))
            .collect();
        let report = Engine::new(sys, open_workload(arrivals), SimDuration::from_secs(30), 1).run();
        assert!(report.shed >= 8, "{}", report.summary());
        assert!(report.resilience.breaker_transitions >= 1);
        assert!(report.is_conserved());
    }

    #[test]
    fn depth_shed_policy_rejects_fast_and_counts_shed() {
        use ntier_resilience::ShedPolicy;
        let mut sys = tiny_sync_system();
        // Web admits everything (deep backlog); the app tier sheds at depth 2.
        sys.tiers[0] = TierSpec::sync("Web", 64, 64);
        sys.tiers[1] = sys.tiers[1]
            .clone()
            .with_shed_policy(ShedPolicy::on_depth(2));
        sys.tiers[1] = sys.tiers[1].clone().with_stalls(StallSchedule::at_marks(
            [SimTime::from_millis(50)],
            SimDuration::from_millis(500),
        ));
        let arrivals: Vec<SimTime> = (0..20).map(|i| SimTime::from_millis(100 + i)).collect();
        let report = Engine::new(sys, open_workload(arrivals), SimDuration::from_secs(5), 1).run();
        assert!(report.shed > 0, "{}", report.summary());
        assert_eq!(report.shed, report.tiers[1].resilience.shed);
        assert_eq!(report.injected, 20);
        assert!(report.is_conserved());
        // Shed requests are resolved instantly, far faster than the stall.
        assert!(report.completed + report.shed == 20 || report.failed > 0);
    }

    #[test]
    fn inner_hop_policy_replaces_kernel_rto() {
        use ntier_resilience::{CallerPolicy, FaultPlan, RetryPolicy};
        // Drops into the app tier for 300 ms. Kernel RTO would stall the
        // request 3 s; the app-level hop policy retries every ~40 ms and the
        // request completes well under a second.
        let mut sys = tiny_sync_system().with_hop_delay(SimDuration::ZERO);
        sys.tiers[1] = sys.tiers[1].clone().with_caller_policy(CallerPolicy {
            attempt_timeout: SimDuration::from_secs(60), // unused on inner hops
            retry: Some(RetryPolicy::capped(
                20,
                SimDuration::from_millis(40),
                SimDuration::from_millis(40),
            )),
            budget: None,
            breaker: None,
            hedge: None,
            cancel: None,
        });
        let sys = sys.with_faults(FaultPlan::none().drop_messages(
            1,
            1.0,
            SimTime::ZERO,
            SimTime::from_millis(300),
        ));
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(10)]),
            SimDuration::from_secs(5),
            1,
        )
        .run();
        assert_eq!(report.completed, 1, "{}", report.summary());
        assert!(report.resilience.retries >= 1);
        let mean = report.latency.mean();
        assert!(mean < SimDuration::from_secs(1), "mean {mean}");
        assert!(report.is_conserved());
    }

    #[test]
    #[should_panic(expected = "fault targets tier 5 outside the chain")]
    fn fault_on_missing_tier_rejected() {
        use ntier_resilience::FaultPlan;
        let mut sys = tiny_sync_system();
        sys.faults = FaultPlan::none().crash(5, SimTime::ZERO, SimTime::from_secs(1));
        let _ = Engine::new(sys, open_workload(vec![]), SimDuration::from_secs(1), 1);
    }

    #[test]
    #[should_panic(expected = "mix-based workloads compile 3-tier plans")]
    fn mix_workload_rejects_non_three_tier_system() {
        let sys = Topology::chain(vec![TierSpec::sync("A", 2, 2), TierSpec::sync("B", 2, 2)]);
        let _ = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(1)]),
            SimDuration::from_secs(1),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "a downstream connection pool requires exactly one downstream")]
    fn last_tier_pool_rejected() {
        let sys = Topology::three_tier(
            TierSpec::sync("Web", 2, 2),
            TierSpec::sync("App", 2, 2),
            TierSpec::sync("Db", 2, 2).with_downstream_pool(5),
        );
        let _ = Engine::new(sys, open_workload(vec![]), SimDuration::from_secs(1), 1);
    }

    #[test]
    fn drop_log_iterates_inline_then_spill() {
        let mut log = DropLog::new();
        for k in 0..(DROP_INLINE + 3) {
            log.push(DropRecord {
                tier: k,
                replica: ReplicaId::FIRST,
                at: SimTime::from_millis(k as u64),
            });
        }
        let tiers: Vec<usize> = log.iter().map(|r| r.tier).collect();
        assert_eq!(tiers, (0..DROP_INLINE + 3).collect::<Vec<_>>());
        assert_eq!(log.iter().next().map(|r| r.tier), Some(0));
        log.clear();
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    fn traced_run_retains_spans_for_dropped_requests() {
        use ntier_trace::{TraceConfig, TraceEventKind};
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 24)]);
        let report = Engine::new(
            tiny_sync_system().with_trace(TraceConfig::sampled(0.0)),
            open_workload(burst.arrivals()),
            SimDuration::from_secs(12),
            1,
        )
        .run();
        let log = report.trace.as_ref().expect("tracing enabled");
        assert_eq!(log.started, 24);
        // With zero sampling, only the VLRT requests (the retransmitted
        // wave) are promoted, and each carries its syn_drop events.
        assert_eq!(log.traces.len() as u64, report.vlrt_total);
        assert!(report.vlrt_total > 0, "{}", report.summary());
        for t in log.vlrt_traces() {
            assert!(
                t.events
                    .iter()
                    .any(|e| matches!(e.kind, TraceEventKind::SynDrop { .. })),
                "VLRT trace {} has no syn_drop",
                t.id
            );
            // Drop count matches the latency step: one drop per +3 s.
            let drops = t.syn_drops().count() as u64;
            let steps = t.latency.as_millis() / 3_000;
            assert_eq!(drops, steps, "trace {}: {} vs {}", t.id, drops, t.latency);
        }
    }

    #[test]
    fn tracing_does_not_change_the_report() {
        use ntier_trace::TraceConfig;
        let burst = BurstSchedule::from_bursts([(SimTime::from_millis(10), 24)]);
        let run = |trace: TraceConfig| {
            let mut report = Engine::new(
                tiny_sync_system().with_trace(trace),
                open_workload(burst.arrivals()),
                SimDuration::from_secs(12),
                7,
            )
            .run();
            report.trace = None;
            report
        };
        let off = run(TraceConfig::disabled());
        let on = run(TraceConfig::always());
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.events, on.events);
        assert_eq!(off.drops_total, on.drops_total);
        assert_eq!(off.latency.total(), on.latency.total());
        assert_eq!(
            off.latency.quantile(0.99),
            on.latency.quantile(0.99),
            "tracing must not perturb the simulation"
        );
    }

    #[test]
    fn retried_request_accumulates_one_trace_across_attempts() {
        use ntier_resilience::{CallerPolicy, RetryPolicy};
        use ntier_trace::{TraceConfig, TraceEventKind};
        // One request into a 30 s stall: the 1 s attempt timeout fires, the
        // retry relaunches, and both attempts land in one trace.
        let policy = CallerPolicy {
            attempt_timeout: SimDuration::from_secs(1),
            retry: Some(RetryPolicy::capped(
                1,
                SimDuration::from_millis(100),
                SimDuration::from_millis(100),
            )),
            budget: None,
            breaker: None,
            hedge: None,
            cancel: None,
        };
        let mut sys = tiny_sync_system()
            .with_client_policy(policy)
            .with_trace(TraceConfig::sampled(0.0));
        sys.tiers[1] = sys.tiers[1].clone().with_stalls(StallSchedule::at_marks(
            [SimTime::ZERO],
            SimDuration::from_secs(30),
        ));
        let report = Engine::new(
            sys,
            open_workload(vec![SimTime::from_millis(10)]),
            SimDuration::from_secs(40),
            1,
        )
        .run();
        let log = report.trace.as_ref().expect("tracing enabled");
        assert_eq!(log.started, 1);
        assert_eq!(log.traces.len(), 1, "failed request is always promoted");
        let t = &log.traces[0];
        let sends: Vec<u32> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::ClientSend { attempt } => Some(attempt),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![0, 1], "both attempts in one timeline");
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::AttemptTimeout { .. })));
    }
}
