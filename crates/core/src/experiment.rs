//! Ready-made experiment specifications for every figure in the paper.
//!
//! Each `figN_*` function returns an [`ExperimentSpec`] wired exactly like
//! the corresponding experiment: the same server ladder (NX=0..3), the same
//! millibottleneck source and timing marks, and a workload calibrated to the
//! paper's throughput/utilization operating points (see DESIGN.md §6). The
//! bench harness in `crates/bench` runs these and prints paper-vs-measured
//! rows; EXPERIMENTS.md records the outcomes.

use ntier_des::prelude::*;
use ntier_interference::{Colocation, LogFlush, StallSchedule};
use ntier_server::ThreadOverheadModel;
use ntier_workload::{ClosedLoopSpec, RequestMix};

use crate::config::{SystemConfig, TierSpec};
use crate::engine::{Engine, Workload};
use crate::presets;
use crate::report::RunReport;
use crate::topology::{Balancer, Branch, Topology};

/// Warm-up offset applied to every millibottleneck mark: closed-loop
/// clients ramp in over one think time (~7 s), so stalls are scheduled
/// `WARMUP` after t=0 and figure timelines subtract it when rendering.
pub const WARMUP: SimDuration = SimDuration::from_secs(10);

fn rubbos_workload(clients: u32) -> Workload {
    // Ramp = mean think time: the ramp arrival rate N/Z equals the steady
    // rate, so there is no startup overload transient.
    Workload::closed(ClosedLoopSpec::rubbos(clients), RequestMix::rubbos_browse())
}

/// A fully specified, runnable experiment.
#[derive(Debug)]
pub struct ExperimentSpec {
    /// Experiment identifier ("fig1a", "fig3", ...).
    pub name: &'static str,
    /// The system under test.
    pub system: SystemConfig,
    /// The workload.
    pub workload: Workload,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Seed (same seed ⇒ identical report).
    pub seed: u64,
}

impl ExperimentSpec {
    /// Runs the experiment.
    pub fn run(self) -> RunReport {
        Engine::new(self.system, self.workload, self.horizon, self.seed).run()
    }

    /// Runs the experiment with the event schedule partitioned into
    /// `shards` per-subtree calendar queues (see
    /// [`Engine::run_sharded`]). The report is bit-identical to
    /// [`Self::run`] at any shard count.
    pub fn run_sharded(self, shards: usize) -> RunReport {
        Engine::new(self.system, self.workload, self.horizon, self.seed).run_sharded(shards)
    }
}

/// Millibottleneck trains for the Fig. 1 endurance runs: clusters of 2–3
/// bursts spaced ~3 s apart (the spacing Fig. 3's own marks show — bursts at
/// 2 and 5 s), each stalling the app tier for 600 ms, with clusters arriving
/// every ~30 s. The ~3 s spacing is what aligns retry windows with later
/// bursts and produces the 6 s and 9 s latency modes.
pub fn fig1_stall_train(horizon: SimDuration, seed: u64) -> StallSchedule {
    let mut rng = SimRng::seed_from(seed).fork("fig1-stalls");
    let mut marks = Vec::new();
    let mut t = SimTime::ZERO + WARMUP + SimDuration::from_secs(5);
    let end = SimTime::ZERO + horizon;
    while t < end {
        let bursts = 2 + rng.below(2); // 2..=3 bursts per cluster
        for b in 0..bursts {
            marks.push(t + SimDuration::from_secs(3) * b);
        }
        // next cluster 25–40 s later
        t += SimDuration::from_millis(25_000 + rng.below(15_000));
    }
    StallSchedule::at_marks(marks, SimDuration::from_millis(600))
}

/// Fig. 1(a–c): the fully synchronous system at WL 4000 / 7000 / 8000 with
/// recurring CPU millibottlenecks in Tomcat. `clients` selects the panel.
pub fn fig1(clients: u32, horizon: SimDuration, seed: u64) -> ExperimentSpec {
    let mut system = presets::sync_three_tier();
    system.tiers[1] = system.tiers[1]
        .clone()
        .with_stalls(fig1_stall_train(horizon, seed));
    ExperimentSpec {
        name: "fig1",
        system,
        workload: Workload::Closed {
            spec: ClosedLoopSpec::rubbos(clients),
            mix: RequestMix::rubbos_browse(),
        },
        horizon,
        seed,
    }
}

/// The tracing showcase: Fig. 1's WL 4000 operating point (~43% app-tier
/// utilization, recurring Tomcat millibottlenecks) with per-request causal
/// tracing enabled. Every VLRT/failed/shed request's span tree is retained
/// (plus 1% of fast ones for context), ready for [`ntier_trace::RootCause`]
/// attribution and Chrome-trace export — the micro-level evidence behind
/// the paper's Fig. 2 timestamp analysis, reproduced per request.
pub fn trace_vlrt(seed: u64) -> ExperimentSpec {
    use ntier_trace::TraceConfig;
    let horizon = SimDuration::from_secs(60);
    let mut spec = fig1(4_000, horizon, seed);
    spec.name = "trace-vlrt";
    spec.system = spec
        .system
        .with_trace(TraceConfig::sampled(0.01).with_ring_capacity(32_768));
    spec
}

/// Fig. 3: upstream CTQO from VM-consolidation CPU millibottlenecks in
/// Tomcat, burst marks at 2/5/9/15 s (SysBursty batches of ~530 requests ≈
/// 400 ms of stolen CPU), WL 7000, 20 s timeline.
pub fn fig3(seed: u64) -> ExperimentSpec {
    let hog = Colocation::new(530, SimDuration::from_micros(755)); // ≈400 ms
    let stalls = hog.at_marks([12u64, 15, 19, 25].map(SimTime::from_secs)); // 2/5/9/15 + WARMUP
    let mut system = presets::sync_three_tier();
    system.tiers[1] = system.tiers[1].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "fig3",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(30),
        seed,
    }
}

/// Fig. 5: upstream CTQO from I/O (log-flush) millibottlenecks in MySQL
/// every 30 s; Tomcat scaled to 4 cores; 80 s timeline.
pub fn fig5(seed: u64) -> ExperimentSpec {
    let mut system = presets::sync_three_tier();
    system.tiers[1] = system.tiers[1].clone().with_cores(4);
    system.tiers[2] = system.tiers[2].clone().with_stalls(
        LogFlush::new(
            SimTime::ZERO + WARMUP + SimDuration::from_secs(10),
            SimDuration::from_secs(30),
            SimDuration::from_millis(350),
        )
        .schedule(SimDuration::from_secs(90)),
    );
    ExperimentSpec {
        name: "fig5",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(90),
        seed,
    }
}

/// Fig. 7: NX=1 (Nginx–Tomcat–MySQL) with CPU millibottlenecks in Tomcat at
/// 7/26/42/57 s — downstream CTQO at Tomcat itself.
pub fn fig7(seed: u64) -> ExperimentSpec {
    let stalls = StallSchedule::at_marks(
        [17u64, 36, 52, 67].map(SimTime::from_secs), // 7/26/42/57 + WARMUP
        SimDuration::from_millis(400),
    );
    let mut system = presets::nx1();
    system.tiers[1] = system.tiers[1].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "fig7",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(70),
        seed,
    }
}

/// §V-B's second case: NX=1 with millibottlenecks in MySQL — upstream CTQO
/// at Tomcat (pool-mediated), Tomcat drops. The paper describes this case in
/// text (graphs omitted for space).
pub fn nx1_mysql_stall(seed: u64) -> ExperimentSpec {
    let stalls = StallSchedule::at_marks(
        [18u64, 33, 48, 63].map(SimTime::from_secs),
        SimDuration::from_millis(450),
    );
    let mut system = presets::nx1();
    system.tiers[2] = system.tiers[2].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "nx1-mysql-stall",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(70),
        seed,
    }
}

/// Fig. 8: NX=2 (Nginx–XTomcat–MySQL) with millibottlenecks in MySQL at
/// 6/21/39/57 s — downstream CTQO at MySQL.
pub fn fig8(seed: u64) -> ExperimentSpec {
    let stalls = StallSchedule::at_marks(
        [16u64, 31, 49, 67].map(SimTime::from_secs), // 6/21/39/57 + WARMUP
        SimDuration::from_millis(400),
    );
    let mut system = presets::nx2();
    system.tiers[2] = system.tiers[2].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "fig8",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(70),
        seed,
    }
}

/// Fig. 9: NX=2 with millibottlenecks in XTomcat at 8/24/39 s — the
/// post-stall batch floods MySQL: downstream CTQO at MySQL.
pub fn fig9(seed: u64) -> ExperimentSpec {
    let stalls = StallSchedule::at_marks(
        [18u64, 34, 49].map(SimTime::from_secs), // 8/24/39 + WARMUP
        SimDuration::from_millis(400),
    );
    let mut system = presets::nx2();
    system.tiers[1] = system.tiers[1].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "fig9",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(60),
        seed,
    }
}

/// Fig. 10: NX=3 (Nginx–XTomcat–XMySQL) with CPU millibottlenecks in
/// XTomcat at 4/13/35 s — no CTQO, no drops.
pub fn fig10(seed: u64) -> ExperimentSpec {
    let stalls = StallSchedule::at_marks(
        [14u64, 23, 45].map(SimTime::from_secs), // 4/13/35 + WARMUP
        SimDuration::from_millis(400),
    );
    let mut system = presets::nx3();
    system.tiers[1] = system.tiers[1].clone().with_stalls(stalls);
    ExperimentSpec {
        name: "fig10",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(60),
        seed,
    }
}

/// Fig. 11: NX=3 with I/O (log-flush) millibottlenecks in XMySQL every 30 s
/// — all tiers buffer in lightweight queues, no drops.
pub fn fig11(seed: u64) -> ExperimentSpec {
    let mut system = presets::nx3();
    system.tiers[2] = system.tiers[2].clone().with_stalls(
        LogFlush::new(
            SimTime::ZERO + WARMUP + SimDuration::from_secs(13),
            SimDuration::from_secs(30),
            SimDuration::from_millis(350),
        )
        .schedule(SimDuration::from_secs(90)),
    );
    ExperimentSpec {
        name: "fig11",
        system,
        workload: rubbos_workload(7_000),
        horizon: SimDuration::from_secs(90),
        seed,
    }
}

/// Fig. 12, synchronous arm: the "RPC purist" fix — 2000-thread pools — at
/// the given workload concurrency. Thread-management overhead (context
/// switching + GC) is applied at the app tier.
pub fn fig12_sync(concurrency: u32, seed: u64) -> ExperimentSpec {
    let system = Topology::three_tier(
        TierSpec::sync("Apache-2000", 2_000, 128),
        TierSpec::sync("Tomcat-2000", 2_000, 128)
            .with_downstream_pool(2_000)
            .with_overhead(ThreadOverheadModel::java_server_2000_threads()),
        TierSpec::sync("MySQL-2000", 2_000, 128),
    );
    ExperimentSpec {
        name: "fig12-sync",
        system,
        workload: fig12_workload(concurrency),
        horizon: SimDuration::from_secs(20),
        seed,
    }
}

/// Fig. 12, asynchronous arm: NX=3 at the given workload concurrency.
pub fn fig12_async(concurrency: u32, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        name: "fig12-async",
        system: presets::nx3(),
        workload: fig12_workload(concurrency),
        horizon: SimDuration::from_secs(20),
        seed,
    }
}

fn fig12_workload(concurrency: u32) -> Workload {
    // Closed loop with negligible think time: the number of clients *is*
    // the workload concurrency.
    Workload::Closed {
        spec: ClosedLoopSpec::new(concurrency, Box::new(Point::new(0.0001)))
            .with_ramp(SimDuration::from_millis(100)),
        mix: RequestMix::view_story(),
    }
}

/// The Fig. 12 sweep points from the paper.
pub const FIG12_CONCURRENCIES: [u32; 5] = [100, 200, 400, 800, 1_600];

/// The full Fig. 12 grid — sync and async arms interleaved per concurrency
/// level — as one submission list for the parallel runner. Index `2i` is
/// the sync arm and `2i + 1` the async arm of `FIG12_CONCURRENCIES[i]`.
pub fn fig12_grid(seed: u64) -> Vec<ExperimentSpec> {
    FIG12_CONCURRENCIES
        .into_iter()
        .flat_map(|c| [fig12_sync(c, seed), fig12_async(c, seed)])
        .collect()
}

/// One spec per seed for any seeded experiment constructor — the
/// replication pattern behind confidence bands, shaped for the runner.
pub fn replications(seeds: &[u64], make: impl FnMut(u64) -> ExperimentSpec) -> Vec<ExperimentSpec> {
    seeds.iter().copied().map(make).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_stall_train_is_deterministic_and_clustered() {
        let h = SimDuration::from_secs(120);
        let a = fig1_stall_train(h, 9);
        let b = fig1_stall_train(h, 9);
        assert_eq!(a, b);
        assert!(a.intervals().len() >= 8, "{} stalls", a.intervals().len());
        // consecutive bursts inside a cluster are 3 s apart
        let starts: Vec<SimTime> = a.intervals().iter().map(|(s, _)| *s).collect();
        let has_3s_gap = starts
            .windows(2)
            .any(|w| w[1] - w[0] == SimDuration::from_secs(3));
        assert!(has_3s_gap);
    }

    #[test]
    fn specs_build_with_expected_shapes() {
        assert_eq!(fig3(1).system.stalled_tier(), Some(1));
        assert_eq!(fig5(1).system.stalled_tier(), Some(2));
        assert_eq!(fig5(1).system.tiers[1].cores, 4);
        assert_eq!(fig7(1).system.nx(), 1);
        assert_eq!(fig8(1).system.nx(), 2);
        assert_eq!(fig9(1).system.stalled_tier(), Some(1));
        assert_eq!(fig10(1).system.nx(), 3);
        assert_eq!(fig11(1).system.nx(), 3);
        assert!(fig12_sync(100, 1).system.is_fully_sync());
        assert!(fig12_async(100, 1).system.is_fully_async());
    }
}

/// Which caller-policy arm of the [`retry_storm`] experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStormVariant {
    /// No client policy: drops ride the kernel retransmit schedule only.
    Baseline,
    /// Aggressive attempt timeout with eager, unmetered retries and no
    /// breaker — the anti-pattern that amplifies CTQO.
    Naive,
    /// The same timeout and retry bound, but metered by a token-bucket
    /// retry budget, protected by a circuit breaker, and with deadline
    /// shedding at the web tier.
    Hardened,
}

/// **Extension (not in the paper):** retry storms vs. retry budgets under
/// millibottlenecks.
///
/// A synchronous 3-tier chain with a *deep* web backlog takes two 1.5 s
/// millibottlenecks at the app tier under an open-loop load at ~75% of
/// capacity. The deep backlog means congestion shows up as queueing delay
/// rather than drops — and queueing delay is exactly what duplicate
/// attempts inflate. The three arms differ only in the client's caller
/// policy:
///
/// * [`RetryStormVariant::Baseline`] — no client policy. The queue from
///   each stall drains before latency reaches the 3 s VLRT threshold:
///   **zero VLRT**.
/// * [`RetryStormVariant::Naive`] — a 2 s attempt timeout with 4 eager,
///   unmetered retries and no breaker. With no [`CancelPolicy`] configured
///   (none of these arms sets one), timed-out attempts are *orphaned*: they
///   keep consuming capacity while their replacements re-enter the queue,
///   so the same stalls now push completions past 3 s — the VLRT tail is
///   entirely self-inflicted retry amplification. Setting a `CancelPolicy`
///   routes each timeout through the cancellation path instead, reaping
///   the abandoned attempt wherever it sits; [`hedging_frontier`] measures
///   that difference.
///
/// [`CancelPolicy`]: ntier_resilience::CancelPolicy
/// * [`RetryStormVariant::Hardened`] — the same timeout and retry bound,
///   but retries spend from a token-bucket budget, a breaker trips after
///   consecutive failures (failing fast instead of amplifying), and the
///   web tier sheds requests that outlived a 10 s deadline. The VLRT
///   fraction falls back to (near) the baseline's, at the cost of
///   explicitly failed/shed requests.
pub fn retry_storm(variant: RetryStormVariant, seed: u64) -> ExperimentSpec {
    use ntier_resilience::{BreakerConfig, CallerPolicy, RetryBudget, RetryPolicy, ShedPolicy};
    let stall = StallSchedule::at_marks(
        [SimTime::from_secs(2), SimTime::from_secs(6)],
        SimDuration::from_millis(1_500),
    );
    // A deep web backlog keeps the congestion in the queue (no drops, no
    // kernel RTO): latency tracks queue length, which is exactly what
    // orphaned attempts and duplicate retries inflate.
    let web = TierSpec::sync("Web", 64, 16_384);
    let app = TierSpec::sync("App", 64, 64).with_stalls(stall);
    let db = TierSpec::sync("Db", 64, 64);
    let web = match variant {
        RetryStormVariant::Baseline => web,
        RetryStormVariant::Naive => {
            web.with_caller_policy(CallerPolicy::naive(SimDuration::from_secs(2), 4))
        }
        RetryStormVariant::Hardened => web
            .with_caller_policy(CallerPolicy::hardened(
                SimDuration::from_secs(2),
                RetryPolicy::capped(4, SimDuration::from_millis(100), SimDuration::from_secs(1))
                    .with_jitter(0.2),
                RetryBudget::new(10.0, 1.0),
                BreakerConfig::new(8, SimDuration::from_secs(1)),
            ))
            .with_shed_policy(ShedPolicy::on_deadline(SimDuration::from_secs(10))),
    };
    let system = Topology::three_tier(web, app, db);
    // 1000 req/s open-loop for 8 s — ~75% of the app tier's ~1.3k req/s
    // capacity, so the extra load from orphaned attempts and eager retries
    // is what tips the system into sustained overload. The horizon leaves
    // room for the +3/6/9 s retransmit tail to complete.
    let arrivals: Vec<SimTime> = (0..8_000u64)
        .map(|i| SimTime::from_micros(i * 1_000))
        .collect();
    ExperimentSpec {
        name: "ext-retry-storm",
        system,
        workload: Workload::open(arrivals, RequestMix::view_story()),
        horizon: SimDuration::from_secs(25),
        seed,
    }
}

/// Which caller-policy arm of the [`hedging_frontier`] experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgingVariant {
    /// No client policy: drops ride the kernel 3 s retransmit schedule, so
    /// every stall mints 3 s (and, when a retransmit lands inside the next
    /// stall, 6 s) latency modes.
    Baseline,
    /// The PR-1 hardened *sequential* stack: 2 s attempt timeout, budgeted
    /// capped retries, circuit breaker, 10 s deadline shedding. Abandoned
    /// attempts are orphaned (no cancellation).
    Hardened,
    /// Budgeted hedging with cancellation propagation: a backup attempt
    /// fires 1.1 s into each unresolved logical request (at most 2, each
    /// spending from a caller-wide token bucket), and the moment one
    /// attempt wins — or the 12 s deadline passes — a cancel chases every
    /// losing attempt down the chain and reaps it.
    HedgedCancelling,
    /// [`HedgingVariant::HedgedCancelling`] plus an AIMD adaptive
    /// concurrency limit on web admission: instead of a fixed backlog
    /// bound, the admission threshold follows observed residence time, so
    /// overload turns into fast sheds rather than deep queues.
    HedgedCancellingAimd,
    /// The replication anti-pattern: eager 400 ms hedges, K = 3, no budget,
    /// no cancellation. Fine at low utilization; at high load the duplicate
    /// attempts multiply effective arrival rate and the orphaned losers
    /// never give their capacity back (Poloczek & Ciucu's flip).
    HedgedNoCancel,
}

/// Operating point for [`hedging_frontier`]: which open-loop arrival rate
/// drives the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgingLoad {
    /// ~571 req/s — the Fig. 1 WL 4000 operating point (~43% app-tier
    /// utilization), where stalls cause drops but the system has headroom.
    Moderate,
    /// ~1149 req/s — ~88% of app-tier capacity, where duplicate attempts
    /// are enough to tip the system into sustained overload.
    High,
}

impl HedgingLoad {
    /// Open-loop inter-arrival gap.
    fn interarrival_us(self) -> u64 {
        match self {
            HedgingLoad::Moderate => 1_750,
            HedgingLoad::High => 870,
        }
    }
}

/// Shared plant for the hedging-frontier arms: a *shallow* web backlog
/// (64 threads + 16 slots) so each 1.8 s app stall overflows into drops,
/// and dropped attempts ride the kernel 3 s RTO — the raw material of the
/// paper's 3/6/9 s modes.
fn hedging_spec(web: TierSpec, load: HedgingLoad, seed: u64) -> ExperimentSpec {
    // Two 1.8 s stalls, 3.5 s apart: a 2 s sequential attempt timeout from
    // late in stall 1 retries straight into stall 2, while a hedge fired in
    // the inter-stall gap completes immediately — and the gap is just wide
    // enough for the gap-landing hedge burst to drain before stall 2.
    let stall = StallSchedule::at_marks(
        [SimTime::from_secs(2), SimTime::from_millis(5_500)],
        SimDuration::from_millis(1_800),
    );
    let app = TierSpec::sync("App", 64, 64).with_stalls(stall);
    let db = TierSpec::sync("Db", 64, 64);
    let system = Topology::three_tier(web, app, db);
    let step = load.interarrival_us();
    let arrivals: Vec<SimTime> = (0..8_000_000 / step)
        .map(|i| SimTime::from_micros(i * step))
        .collect();
    ExperimentSpec {
        name: "ext-hedging-frontier",
        system,
        workload: Workload::open(arrivals, RequestMix::view_story()),
        horizon: SimDuration::from_secs(25),
        seed,
    }
}

/// **Extension (not in the paper):** the hedging frontier — where backup
/// requests erase the VLRT modes, and where they recreate the overload they
/// were meant to route around.
///
/// Unlike [`retry_storm`]'s deep backlog, this plant gives the web tier
/// only 16 backlog slots, so each 2.5 s app stall overflows admission and
/// arrivals *drop*. The paper's mechanism then takes over: dropped attempts
/// sit in kernel RTO limbo and return 3 s (or 6 s, across two stalls)
/// later — the VLRT modes of Fig. 1.
///
/// * At [`HedgingLoad::Moderate`] (the Fig. 1 ~43% operating point) a
///   hedged caller short-circuits the RTO wait: the 1.1 s backup lands
///   after the stall has cleared and completes in milliseconds, so the
///   logical request finishes in ~1–3 s instead of 3–6 s and the VLRT modes
///   vanish. Cancellation then reaps the RTO-limbo loser *before* its
///   retransmit fires — `wasted_work_saved` counts exactly those reclaimed
///   attempts — so the post-stall convoy is not inflated by zombie
///   retransmissions the way [`HedgingVariant::Hardened`]'s orphans
///   inflate it.
/// * At [`HedgingLoad::High`] (~88%) the same trick flips:
///   [`HedgingVariant::HedgedNoCancel`] multiplies the effective arrival
///   rate by up to 1 + K with nothing reclaiming the losers, pushing the
///   system into sustained overload — p99 *rises* well above the
///   budgeted + cancelling arm at the same load (Poloczek & Ciucu's
///   replication flip). The hedge budget bounds the duplicate rate and
///   cancellation returns loser capacity, which is what keeps
///   [`HedgingVariant::HedgedCancelling`] stable there.
pub fn hedging_frontier(variant: HedgingVariant, load: HedgingLoad, seed: u64) -> ExperimentSpec {
    use ntier_resilience::{
        AimdConfig, BreakerConfig, CallerPolicy, CancelPolicy, HedgePolicy, RetryBudget,
        RetryPolicy, ShedPolicy,
    };
    let deadline = SimDuration::from_secs(12);
    let cancel = CancelPolicy::new(SimDuration::from_micros(50));
    // Caller-wide hedge budget: deep enough for the ~2k backups a stall
    // burst wants at the moderate point, while the 500/s refill caps the
    // *sustained* hedge rate under overload.
    let budget = RetryBudget::new(4_000.0, 500.0);
    let hedged = CallerPolicy::hedged(
        deadline,
        HedgePolicy::fixed(SimDuration::from_millis(1_100), 2).with_budget(budget),
    )
    .with_cancel(cancel);
    let web = TierSpec::sync("Web", 64, 16);
    let web = match variant {
        HedgingVariant::Baseline => web,
        // The same CallerPolicy::hardened stack PR 1's retry-storm arm
        // uses, with the budget and breaker scaled to this plant's drop
        // bursts (hundreds of simultaneous timeouts per stall) so retries
        // actually run instead of starving — the strongest sequential
        // opponent the hedged arms can be compared against.
        HedgingVariant::Hardened => web
            .with_caller_policy(CallerPolicy::hardened(
                SimDuration::from_secs(2),
                RetryPolicy::capped(4, SimDuration::from_millis(100), SimDuration::from_secs(1))
                    .with_jitter(0.2),
                RetryBudget::new(2_048.0, 256.0),
                BreakerConfig::new(64, SimDuration::from_secs(1)),
            ))
            .with_shed_policy(ShedPolicy::on_deadline(SimDuration::from_secs(10))),
        HedgingVariant::HedgedCancelling => web.with_caller_policy(hedged),
        HedgingVariant::HedgedCancellingAimd => web
            .with_caller_policy(hedged)
            .with_shed_policy(ShedPolicy::adaptive(AimdConfig::new(64.0, 8.0, 512.0))),
        HedgingVariant::HedgedNoCancel => web.with_caller_policy(CallerPolicy::hedged(
            deadline,
            HedgePolicy::fixed(SimDuration::from_millis(400), 3),
        )),
    };
    hedging_spec(web, load, seed)
}

/// One point of the hedge-delay × K × load frontier: budgeted, cancelling
/// hedging with the given backup `delay` and per-request bound
/// `max_hedges`, on the same plant as [`hedging_frontier`].
pub fn hedging_frontier_point(
    delay: ntier_resilience::HedgeDelay,
    max_hedges: u32,
    load: HedgingLoad,
    seed: u64,
) -> ExperimentSpec {
    use ntier_resilience::{CallerPolicy, CancelPolicy, HedgePolicy, RetryBudget};
    let hedge = HedgePolicy {
        delay,
        max_hedges,
        budget: Some(RetryBudget::new(4_000.0, 500.0)),
    };
    let web = TierSpec::sync("Web", 64, 16).with_caller_policy(
        CallerPolicy::hedged(SimDuration::from_secs(12), hedge)
            .with_cancel(CancelPolicy::new(SimDuration::from_micros(50))),
    );
    hedging_spec(web, load, seed)
}

/// The sweep grid behind the frontier table in EXPERIMENTS.md: three hedge
/// delays (eager fixed, patient fixed, p95-adaptive) × K ∈ {1, 2} × both
/// load points — 12 specs, shaped for `ntier_runner::run_all`.
pub fn hedging_frontier_sweep(seed: u64) -> Vec<ExperimentSpec> {
    use ntier_resilience::HedgeDelay;
    let delays = [
        HedgeDelay::Fixed(SimDuration::from_millis(300)),
        HedgeDelay::Fixed(SimDuration::from_millis(1_100)),
        HedgeDelay::Quantile {
            q: 0.95,
            floor: SimDuration::from_millis(300),
            cap: SimDuration::from_secs(2),
        },
    ];
    let mut specs = Vec::with_capacity(delays.len() * 2 * 2);
    for delay in delays {
        for max_hedges in [1u32, 2] {
            for load in [HedgingLoad::Moderate, HedgingLoad::High] {
                specs.push(hedging_frontier_point(delay, max_hedges, load, seed));
            }
        }
    }
    specs
}

/// **Extension (not in the paper):** CTQO at arbitrary chain depth.
///
/// Builds a depth-`n` synchronous chain of identical small tiers
/// (`threads + backlog` = 24 + 8), stalls the *last* tier, and drives it
/// with an open-loop pipeline workload. The paper studies n = 3; this
/// experiment shows the push-back propagating through any number of RPC
/// hops: the drop site is always tier 0. Setting `async_front` converts
/// tier 0 into an event-driven server, which absorbs the same backlog.
///
/// # Panics
///
/// Panics if `depth < 2`.
pub fn chain_depth(depth: usize, async_front: bool, seed: u64) -> ExperimentSpec {
    use crate::plan::Plan;
    assert!(depth >= 2, "a chain experiment needs at least two tiers");
    let stall = StallSchedule::at_marks(
        [SimTime::from_secs(2), SimTime::from_secs(6)],
        SimDuration::from_millis(700),
    );
    let mut tiers: Vec<TierSpec> = (0..depth)
        .map(|i| TierSpec::sync(format!("T{i}"), 24, 8))
        .collect();
    if async_front {
        tiers[0] = TierSpec::asynchronous("T0", 65_535, 4);
    }
    let last = depth - 1;
    tiers[last] = tiers[last].clone().with_stalls(stall);
    let system = Topology::chain(tiers);
    // 100 req/s of depth-n pipeline requests with 0.2 ms per tier.
    let plan = Plan::pipeline(&vec![SimDuration::from_micros(200); depth]);
    let arrivals: Vec<(SimTime, Plan)> = (0..1_000u64)
        .map(|i| (SimTime::from_millis(i * 10), plan.clone()))
        .collect();
    ExperimentSpec {
        name: "ext-chain-depth",
        system,
        workload: Workload::open_plans(arrivals),
        horizon: SimDuration::from_secs(15),
        seed,
    }
}

/// **Extension (not in the paper):** the replication ladder — Fig. 1's
/// WL 4000 operating point with the app tier split into `replicas`
/// identical Tomcat instances behind `balancer`.
///
/// Total capacity is held at the Fig. 1 operating point: each instance gets
/// `150/replicas` threads, `128/replicas` backlog slots and `50/replicas`
/// JDBC connections (rounded down, floored at 1), so the *set* has the same
/// `MaxSysQDepth` as the unreplicated Tomcat up to integer-division
/// remainders. Replica 0 alone carries the Fig. 1 millibottleneck
/// train — one sick instance behind an otherwise healthy set. Per-request
/// tracing is sampled like [`trace_vlrt`], so [`ntier_trace::RootCause`]
/// can name the hot replica in the VLRT chains.
///
/// With `replicas = 1` this is exactly Fig. 1 (replica-0 stall override ≡
/// tier stall schedule; a 1-instance set consumes no balancer randomness),
/// which the golden-seed determinism tests pin.
///
/// # Panics
///
/// Panics if `replicas` is 0 or exceeds Tomcat's 150 threads (an instance
/// needs at least one worker).
pub fn replication_ladder(replicas: usize, balancer: Balancer, seed: u64) -> ExperimentSpec {
    use ntier_trace::TraceConfig;
    assert!(
        (1..=150).contains(&replicas),
        "replica count {replicas} must leave every Tomcat instance at least one of its 150 threads"
    );
    let horizon = SimDuration::from_secs(60);
    let mut system = presets::sync_three_tier();
    system.tiers[1] = TierSpec::sync("Tomcat", 150 / replicas, (128 / replicas).max(1))
        .with_downstream_pool((50 / replicas).max(1))
        .replicas(replicas)
        .balancer(balancer)
        .with_replica_stalls(0, fig1_stall_train(horizon, seed));
    ExperimentSpec {
        name: "replication-ladder",
        system: system.with_trace(TraceConfig::sampled(0.01).with_ring_capacity(32_768)),
        workload: rubbos_workload(4_000),
        horizon,
        seed,
    }
}

/// The full replication-ladder sweep: replica counts 1/2/5, each under all
/// four balancer policies (1-replica runs are policy-independent but kept
/// per policy as a determinism cross-check).
pub fn replication_ladder_sweep(seed: u64) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(12);
    for replicas in [1usize, 2, 5] {
        for balancer in [
            Balancer::RoundRobin,
            Balancer::LeastOutstanding,
            Balancer::P2c,
            Balancer::Jsq,
        ] {
            specs.push(replication_ladder(replicas, balancer, seed));
        }
    }
    specs
}

/// Which control-plane arm of the [`control_frontier`] experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlVariant {
    /// No controller: the naive retry client's amplification of each stall's
    /// drop burst goes unchecked — the open-loop baseline every other arm is
    /// measured against.
    Uncontrolled,
    /// The damping controller: a fast autoscaler (150 ms provisioning lag)
    /// dilutes the sick replica's round-robin share while the overload
    /// governor brakes web admission the moment goodput collapses or the
    /// retransmit ladder starts climbing.
    Damped,
    /// The harmful controller: scale-down-happy thresholds drain the healthy
    /// replica during the pre-stall calm, and a 2.5 s provisioning lag means
    /// the panic scale-up arrives *into* the retry flood its own drain
    /// caused — the metastable retry-storm regime.
    Amplified,
    /// Policy auto-tuning on a hedged, cancelling caller: the hedge delay
    /// follows the recent p95 and the web AIMD bounds tighten when recent
    /// p99 crosses 2 s — closed-loop versions of the PR-4 static policies.
    Tuned,
}

impl ControlVariant {
    /// Stable label for tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ControlVariant::Uncontrolled => "uncontrolled",
            ControlVariant::Damped => "damped",
            ControlVariant::Amplified => "amplified",
            ControlVariant::Tuned => "tuned",
        }
    }

    /// All four arms, in table order.
    pub const ALL: [ControlVariant; 4] = [
        ControlVariant::Uncontrolled,
        ControlVariant::Damped,
        ControlVariant::Amplified,
        ControlVariant::Tuned,
    ];
}

/// **Extension (not in the paper):** the control frontier — where a
/// closed-loop controller damps CTQO below the uncontrolled baseline, and
/// where the *same actuators* with the wrong set-points manufacture the
/// metastable failure they exist to prevent.
///
/// The plant is [`hedging_frontier`]'s moderate operating point (~571 req/s,
/// the Fig. 1 ~43% utilization) with the app tier split into a 2-replica
/// round-robin set (2 × 32 threads + 32 backlog ≡ the unreplicated 64 + 64)
/// and the two 1.8 s millibottlenecks pinned to replica 0 — one sick
/// instance behind a healthy peer. The web tier keeps the shallow 16-slot
/// backlog, so congestion overflows into SYN drops and the kernel 3/6/9 s
/// ladder, and (except [`ControlVariant::Tuned`]) the client runs the
/// PR-1 naive retry policy — the storm fuel. Tracing is sampled like
/// [`trace_vlrt`], and controller decisions land in the same log, so
/// [`ntier_trace::RootCause::analyze_with_actions`] can place scale-ups,
/// drains and brakes on each VLRT request's causal chain.
///
/// * [`ControlVariant::Damped`] must put VLRT *strictly below* the
///   uncontrolled baseline: scale-ups dilute the sick replica's share of
///   fresh arrivals within ~200 ms of the stall, and the governor's
///   admission brake converts would-be 3 s RTO victims into fast sheds.
/// * [`ControlVariant::Amplified`] shows the flip: by the time the stall
///   hits, its drain has concentrated *all* traffic on the sick replica, the
///   naive retries re-drop and climb the retransmit ladder, and replacement
///   capacity is still in its 2.5 s provisioning pipe.
pub fn control_frontier(variant: ControlVariant, seed: u64) -> ExperimentSpec {
    use ntier_control::{
        AimdTuner, AutoscalerConfig, ControlConfig, GovernorConfig, HedgeTuner, TunerConfig,
    };
    use ntier_resilience::{
        AimdConfig, CallerPolicy, CancelPolicy, HedgePolicy, RetryBudget, ShedPolicy,
    };
    use ntier_trace::TraceConfig;
    let stall = StallSchedule::at_marks(
        [SimTime::from_secs(2), SimTime::from_millis(5_500)],
        SimDuration::from_millis(1_800),
    );
    let web = TierSpec::sync("Web", 64, 16);
    let web = match variant {
        // The tuner needs knobs to turn: a budgeted cancelling hedger (its
        // fire delay is the hedge tuner's actuator) and an AIMD admission
        // limit (its bounds are the aimd tuner's actuator).
        ControlVariant::Tuned => web
            .with_caller_policy(
                CallerPolicy::hedged(
                    SimDuration::from_secs(12),
                    HedgePolicy::fixed(SimDuration::from_millis(1_100), 2)
                        .with_budget(RetryBudget::new(4_000.0, 500.0)),
                )
                .with_cancel(CancelPolicy::new(SimDuration::from_micros(50))),
            )
            .with_shed_policy(ShedPolicy::adaptive(AimdConfig::new(64.0, 8.0, 512.0))),
        _ => web.with_caller_policy(CallerPolicy::naive(SimDuration::from_secs(2), 4)),
    };
    let app = TierSpec::sync("App", 32, 32)
        .replicas(2)
        .balancer(Balancer::RoundRobin)
        .with_replica_stalls(0, stall);
    let db = TierSpec::sync("Db", 64, 64);
    let system = Topology::three_tier(web, app, db)
        .with_trace(TraceConfig::sampled(0.01).with_ring_capacity(32_768));
    let system = match variant {
        ControlVariant::Uncontrolled => system,
        ControlVariant::Damped => system.with_control(
            ControlConfig::every(SimDuration::from_millis(50))
                .with_autoscaler(AutoscalerConfig {
                    tier: 1,
                    min_replicas: 2,
                    max_replicas: 4,
                    up_depth: 8.0,
                    down_depth: 0.5,
                    provisioning_lag: SimDuration::from_millis(150),
                    cooldown: SimDuration::from_millis(250),
                })
                .with_governor(GovernorConfig {
                    min_offered: 40,
                    goodput_ratio: 0.5,
                    ordinal_floor: 2,
                    arm_after: 2,
                    brake_tier: 0,
                    brake_depth: 48,
                    hold: SimDuration::from_secs(1),
                    release_ratio: 0.7,
                }),
        ),
        // down_depth 4.0 sits *above* the calm-traffic depth, so the drain
        // fires in the first cooldown-free window; up_depth 48 only trips
        // once the lone survivor is already wedged, and by then the new
        // capacity is 2.5 s away.
        ControlVariant::Amplified => system.with_control(
            ControlConfig::every(SimDuration::from_millis(50)).with_autoscaler(AutoscalerConfig {
                tier: 1,
                min_replicas: 1,
                max_replicas: 4,
                up_depth: 48.0,
                down_depth: 4.0,
                provisioning_lag: SimDuration::from_millis(2_500),
                cooldown: SimDuration::from_millis(200),
            }),
        ),
        ControlVariant::Tuned => system.with_control(
            ControlConfig::every(SimDuration::from_millis(50)).with_tuner(TunerConfig {
                // Floor at 1 s, not lower: recent quantiles are survivor-
                // biased during a stall (the stuck requests aren't
                // completing, so p95 stays low), and an eager floor would
                // hedge straight into the storm.
                hedge: Some(HedgeTuner {
                    q: 0.95,
                    floor: SimDuration::from_secs(1),
                    cap: SimDuration::from_secs(2),
                }),
                aimd: Some(AimdTuner {
                    tier: 0,
                    low: SimDuration::from_millis(500),
                    high: SimDuration::from_secs(3),
                    tight: (16.0, 96.0),
                    wide: (8.0, 512.0),
                }),
            }),
        ),
    };
    // ~571 req/s open-loop for 8 s (the Fig. 1 WL 4000 point); the horizon
    // leaves room for the 3/6/9 s retransmit tail and the naive retries.
    let arrivals: Vec<SimTime> = (0..8_000_000 / 1_750u64)
        .map(|i| SimTime::from_micros(i * 1_750))
        .collect();
    ExperimentSpec {
        name: "ext-control-frontier",
        system,
        workload: Workload::open(arrivals, RequestMix::view_story()),
        horizon: SimDuration::from_secs(25),
        seed,
    }
}

/// All four control-frontier arms for one seed, shaped for
/// `ntier_runner::run_all` and the EXPERIMENTS.md frontier table.
pub fn control_frontier_sweep(seed: u64) -> Vec<ExperimentSpec> {
    ControlVariant::ALL
        .into_iter()
        .map(|v| control_frontier(v, seed))
        .collect()
}

/// Which arm of the [`detection_frontier`] experiment to run. The four arms
/// span the sweep's axes — ejection threshold (none / 1.0 / none / 0.3),
/// probation (— / 2 s / — / 4 s) and load (~571 vs ~870 req/s) — and pair
/// into the two regimes the frontier demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionVariant {
    /// Gray-degraded replica at moderate load, no detector: the balancer
    /// keeps feeding the slow instance, its backlog overflows, and the
    /// 3/6/9 s ladder mints VLRT — the baseline the tuned arm must beat.
    Undetected,
    /// The same gray plant with [`ntier_resilience::HealthPolicy::monitor`]
    /// defaults: the
    /// sick replica's latency/error score crosses 1.0 with peer agreement,
    /// ejection reroutes fresh picks to the healthy peer, and probation
    /// reinstates the replica once its envelope recovers.
    Tuned,
    /// High load, *no* fault, no detector: the clean baseline the
    /// hair-trigger arm is measured against.
    CleanHot,
    /// High load, *no* fault, hair-trigger policy (threshold 0.3 against a
    /// 3 ms latency reference, 4 s probation): ordinary ~2 ms queueing
    /// residence reads as sickness, log-normal variance between two
    /// equally loaded replicas clears the weak peer gate, a healthy
    /// replica is falsely ejected, and the survivor — now oversubscribed —
    /// drops, ladders and feeds the naive retry client. Detection
    /// manufactures the storm it exists to prevent.
    HairTrigger,
}

impl DetectionVariant {
    /// Stable label for tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            DetectionVariant::Undetected => "undetected",
            DetectionVariant::Tuned => "tuned",
            DetectionVariant::CleanHot => "clean-hot",
            DetectionVariant::HairTrigger => "hair-trigger",
        }
    }

    /// All four arms, in table order.
    pub const ALL: [DetectionVariant; 4] = [
        DetectionVariant::Undetected,
        DetectionVariant::Tuned,
        DetectionVariant::CleanHot,
        DetectionVariant::HairTrigger,
    ];
}

/// **Extension (not in the paper):** the detection frontier — where
/// gray-failure ejection suppresses the very-long-response-time tail, and
/// where the *same detector* with a hair-trigger threshold under load
/// manufactures the tail by falsely ejecting healthy capacity.
///
/// The plant is [`control_frontier`]'s 2-replica round-robin app tier
/// behind the shallow-backlog web tier and the PR-1 naive retry client,
/// driven by the multi-class [`RequestMix::rubbos_browse`] browse mix
/// (log-normal demands give passive health scoring real replica-to-replica
/// spread to measure — and to mis-measure). The app backlog is deepened to
/// 128 so a wedged replica's residence climbs past the detector's 1 s
/// latency reference *before* overflow drops begin — latent, then loud.
/// The sick instance is *gray*, not stalled: a
/// [`ntier_resilience::FaultPlan::gray_degradation`] envelope ramps
/// App#0's service time to 10× nominal over 0.5 s, holds the plateau for
/// 6 s and recovers — the replica keeps answering, just slowly (capacity
/// ≈ 110 req/s against ~240 offered), so nothing but passive
/// latency/error/phi evidence distinguishes it from its peer. Tracing is
/// sampled and health verdicts land in the control log, so
/// [`ntier_trace::RootCause::analyze_with_actions`] places each
/// `eject(t1#0)`/`reinstate(t1#0)` on the causal chain of every VLRT
/// request it bounded (or caused).
///
/// * [`DetectionVariant::Tuned`] must put VLRT *strictly below*
///   [`DetectionVariant::Undetected`]: the wedged replica's residence and
///   drop EWMAs push its score past the default 1.0 threshold within a few
///   ticks of the plateau, fresh picks drain to the healthy peer (~43 %
///   utilized), and trickle probes reinstate the replica after its
///   envelope recovers.
/// * [`DetectionVariant::HairTrigger`] must put VLRT *above*
///   [`DetectionVariant::CleanHot`]: with no fault present at all, the
///   0.3 threshold against a 3 ms reference reads ordinary ~2 ms queueing
///   residence as sickness, log-normal variance clears the weak peer
///   gate, and dropping one of two replicas at ~54 % utilization leaves
///   the survivor ~107 % subscribed — the retry-storm recipe of
///   `retry_storm` all over again, i.e. false-ejection amplification.
pub fn detection_frontier(variant: DetectionVariant, seed: u64) -> ExperimentSpec {
    use ntier_resilience::{CallerPolicy, FaultPlan, GrayEnvelope, HealthPolicy};
    use ntier_trace::TraceConfig;
    let web = TierSpec::sync("Web", 64, 16)
        .with_caller_policy(CallerPolicy::naive(SimDuration::from_secs(2), 4));
    let app = TierSpec::sync("App", 32, 128)
        .replicas(2)
        .balancer(Balancer::RoundRobin);
    let db = TierSpec::sync("Db", 64, 64);
    let horizon = SimDuration::from_secs(25);
    let system = Topology::three_tier(web, app, db)
        .with_trace(TraceConfig::sampled(0.01).with_ring_capacity(32_768));
    let system = match variant {
        DetectionVariant::Undetected | DetectionVariant::Tuned => {
            // App#0 turns gray at t=2 s: ramp to 10× service time over
            // 0.5 s, 6 s plateau, 0.5 s recovery.
            let plan = FaultPlan::none()
                .gray_degradation(
                    1,
                    0,
                    SimTime::from_secs(2),
                    GrayEnvelope::new(
                        SimDuration::from_millis(500),
                        SimDuration::from_secs(6),
                        SimDuration::from_millis(500),
                        10.0,
                    ),
                )
                .expect("a single gray envelope is a valid plan");
            plan.validate(horizon).expect("envelope fits the horizon");
            system.with_faults(plan)
        }
        DetectionVariant::CleanHot | DetectionVariant::HairTrigger => system,
    };
    let system = match variant {
        DetectionVariant::Undetected | DetectionVariant::CleanHot => system,
        DetectionVariant::Tuned => system.with_health(HealthPolicy::monitor(1)),
        DetectionVariant::HairTrigger => {
            let mut hair = HealthPolicy::monitor(1)
                .with_eject_score(0.3)
                .with_probation(SimDuration::from_secs(4));
            // A 3 ms latency reference barely above the plant's ~2 ms
            // queueing residence reads health as near-sickness
            // everywhere, and the weak peer-agreement gate lets
            // log-normal service variance between two equally loaded
            // replicas clear the z-score.
            hair.lat_ref = SimDuration::from_millis(3);
            hair.eject_z = 0.2;
            hair.warmup_replies = 4;
            system.with_health(hair)
        }
    };
    // Moderate arms run the control-frontier operating point (~571 req/s,
    // ~21 % per-replica app utilization — but ~2.2× the sick replica's
    // plateau capacity); the hot arms push ~1 430 req/s (~54 %), where
    // losing a replica leaves the survivor oversubscribed. 12 s of
    // arrivals leave post-recovery traffic for the probation probes, and
    // the horizon leaves room for the 3/6/9 s retransmit tail.
    let gap_us = match variant {
        DetectionVariant::Undetected | DetectionVariant::Tuned => 1_750u64,
        DetectionVariant::CleanHot | DetectionVariant::HairTrigger => 700,
    };
    let arrivals: Vec<SimTime> = (0..12_000_000 / gap_us)
        .map(|i| SimTime::from_micros(i * gap_us))
        .collect();
    ExperimentSpec {
        name: "ext-detection-frontier",
        system,
        workload: Workload::open(arrivals, RequestMix::rubbos_browse()),
        horizon,
        seed,
    }
}

/// All four detection-frontier arms for one seed, shaped for
/// `ntier_runner::run_all` and the EXPERIMENTS.md frontier table.
pub fn detection_frontier_sweep(seed: u64) -> Vec<ExperimentSpec> {
    DetectionVariant::ALL
        .into_iter()
        .map(|v| detection_frontier(v, seed))
        .collect()
}

/// **Extension (not in the paper):** scatter-gather fan-out. A synchronous
/// front tier scatters every request to three shard subtrees and replies
/// once a 2-of-3 quorum answers; shard 0 is additionally a 2-replica set
/// behind least-outstanding, and shard 1 runs a recurring millibottleneck.
/// Under quorum 2 the stalled shard's 3 s retransmit ladders are absorbed
/// by the two healthy arms — the fan-out analogue of the paper's NX
/// conversion — while quorum 3 (set `system.shape.quorum[0] = 3`) re-exposes
/// them.
pub fn replicated_fanout(seed: u64) -> ExperimentSpec {
    use crate::plan::Plan;
    let stall = StallSchedule::at_marks(
        [SimTime::from_secs(2), SimTime::from_secs(6)],
        SimDuration::from_millis(700),
    );
    let system = Topology::client()
        .tier(TierSpec::sync("Front", 64, 32))
        .fanout(
            2,
            vec![
                Branch::tier(
                    TierSpec::sync("Shard0", 12, 4)
                        .replicas(2)
                        .balancer(Balancer::LeastOutstanding),
                ),
                Branch::tier(TierSpec::sync("Shard1", 24, 8).with_stalls(stall)),
                Branch::tier(TierSpec::sync("Shard2", 24, 8)),
            ],
        )
        .build()
        .expect("static fan-out topology is valid");
    // 100 req/s of tree-pipeline requests, 0.2 ms per node.
    let plan = Plan::tree_pipeline(&system.shape, &[SimDuration::from_micros(200); 4]);
    let arrivals: Vec<(SimTime, Plan)> = (0..1_000u64)
        .map(|i| (SimTime::from_millis(i * 10), plan.share()))
        .collect();
    ExperimentSpec {
        name: "ext-replicated-fanout",
        system,
        workload: Workload::open_plans(arrivals),
        horizon: SimDuration::from_secs(15),
        seed,
    }
}

/// Which caller-policy arm of the [`trace_replay`] experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceReplayArm {
    /// No client policy: the trace's submission surges overflow the app
    /// tier's `MaxSysQDepth`, drops ride the kernel 3/6/9 s retransmit
    /// ladder, and CTQO episodes appear even though average utilization
    /// over the hour is modest.
    Baseline,
    /// The hardened caller stack from [`retry_storm`]: a 2 s attempt
    /// timeout with budgeted capped retries, a circuit breaker that fails
    /// fast while the surge drains, and a 10 s deadline shed. Requests
    /// caught in a surge fail quickly instead of minting multi-second
    /// retransmit latencies.
    Hardened,
}

impl TraceReplayArm {
    /// Stable label used in report names and CI output.
    pub fn label(self) -> &'static str {
        match self {
            TraceReplayArm::Baseline => "baseline",
            TraceReplayArm::Hardened => "hardened",
        }
    }
}

/// The bundled one-hour Alibaba-dialect cluster-trace fixture:
/// `fixtures/alibaba_1h.csv`, ~720 batch tasks plus three submission
/// surges, expanding to just over one million task instances.
pub const TRACE_REPLAY_FIXTURE: &str = include_str!("../../../fixtures/alibaba_1h.csv");

/// Replays the bundled one-hour cluster trace ([`TRACE_REPLAY_FIXTURE`])
/// through the synchronous three-tier system, streaming arrivals from the
/// CSV so memory stays proportional to the number of *active* requests
/// rather than the trace length.
///
/// Each task instance becomes one request: [`TraceDemandModel::paper_default`]
/// scales the paper's 3-tier demand vector by the task's normalized CPU
/// request. The trace averages ~290 instances/s — about 25% of the app
/// tier's capacity — but carries three 2 s submission surges at roughly
/// 4 000 instances/s each. Under [`TraceReplayArm::Baseline`] those surges
/// overflow the app tier's queue (threads + backlog = 128), dropped packets
/// retransmit on the 3/6/9 s ladder, and the CTQO detector flags episodes;
/// [`TraceReplayArm::Hardened`] converts them into fast failures.
pub fn trace_replay(arm: TraceReplayArm, seed: u64) -> ExperimentSpec {
    trace_replay_csv(TRACE_REPLAY_FIXTURE, arm, seed)
}

/// [`trace_replay`] over a caller-supplied Alibaba-dialect CSV. The rows
/// must be sorted by start time; a malformed row truncates the run and
/// surfaces in [`RunReport::workload_fault`] instead of panicking.
pub fn trace_replay_csv(csv: &'static str, arm: TraceReplayArm, seed: u64) -> ExperimentSpec {
    use crate::arrivals::{TraceDemandModel, TracePlans};
    use ntier_resilience::{BreakerConfig, CallerPolicy, RetryBudget, RetryPolicy, ShedPolicy};
    use ntier_workload::cluster_trace::{ClusterTraceReader, TraceArrivals, TraceDialect};

    let reader = ClusterTraceReader::new(std::io::Cursor::new(csv), TraceDialect::Alibaba);
    let source = TracePlans::new(
        TraceArrivals::new(reader),
        TraceDemandModel::paper_default(),
    );

    let web = TierSpec::sync("Web", 64, 128);
    let web = match arm {
        TraceReplayArm::Baseline => web,
        TraceReplayArm::Hardened => web
            .with_caller_policy(CallerPolicy::hardened(
                SimDuration::from_secs(2),
                RetryPolicy::capped(4, SimDuration::from_millis(100), SimDuration::from_secs(1))
                    .with_jitter(0.2),
                RetryBudget::new(10.0, 1.0),
                BreakerConfig::new(8, SimDuration::from_secs(1)),
            ))
            .with_shed_policy(ShedPolicy::on_deadline(SimDuration::from_secs(10))),
    };
    let app = TierSpec::sync("App", 64, 64);
    let db = TierSpec::sync("Db", 64, 64);
    let system = Topology::three_tier(web, app, db);
    let name = match arm {
        TraceReplayArm::Baseline => "ext-trace-replay-baseline",
        TraceReplayArm::Hardened => "ext-trace-replay-hardened",
    };
    ExperimentSpec {
        name,
        // One hour of trace time plus room for the retransmit tail of the
        // final surge to complete.
        horizon: SimDuration::from_secs(3_640),
        system,
        workload: Workload::from_source(source),
        seed,
    }
}
