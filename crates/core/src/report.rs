//! Run reports: everything the paper's figures plot, in one structure.

use ntier_control::ControlLog;
use ntier_des::ids::{ReplicaId, TierId};
use ntier_des::time::{SimDuration, SimTime};
use ntier_resilience::ResilienceStats;
use ntier_telemetry::histogram::Mode;
use ntier_telemetry::{LatencyHistogram, MetricsRegistry, UtilizationSeries, WindowedSeries};
use ntier_trace::{ControlAction, TierData, TraceLog};

/// Per-replica measurements for one instance of a replica set. Only
/// populated on [`TierReport::replicas`] when the tier runs more than one
/// replica; the tier-level fields then hold the aggregate view.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Which replica (0-based).
    pub id: ReplicaId,
    /// Queued requests at this replica, sampled on every change.
    pub queue_depth: WindowedSeries,
    /// Dropped messages at this replica per 50 ms window.
    pub drops: WindowedSeries,
    /// VLRT requests attributed to drops at this replica.
    pub vlrt: WindowedSeries,
    /// This replica's own CPU busy time per 50 ms window.
    pub util: UtilizationSeries,
    /// Per-window utilization of interference co-located with this replica.
    pub interferer_util: Vec<f64>,
    /// Total drops at this replica.
    pub drops_total: u64,
    /// Highest observed queue depth at this replica.
    pub peak_queue: usize,
    /// Completed process spawns at this replica.
    pub spawns: u64,
}

/// Per-tier measurements from one run.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Node id in the call graph (preorder; chains read 0 = web, 1 = app…).
    pub id: TierId,
    /// Tier display name.
    pub name: String,
    /// `"sync"` or `"async"`.
    pub arch: &'static str,
    /// Admission capacity at start (`MaxSysQDepth` or `LiteQDepth`).
    pub capacity: usize,
    /// Queued requests (threads busy + backlog, or async in-flight) sampled
    /// on every change; read `max` per 50 ms window for the figures.
    pub queue_depth: WindowedSeries,
    /// Dropped messages per 50 ms window.
    pub drops: WindowedSeries,
    /// VLRT requests attributed to drops at this tier, per 50 ms window
    /// (recorded at first-drop time, the way the paper's (c) panels count).
    pub vlrt: WindowedSeries,
    /// This tier's own CPU busy time per 50 ms window.
    pub util: UtilizationSeries,
    /// Per-window utilization of co-located interference (the hog VM /
    /// flushing kernel); add to `util` for the physical-core view.
    pub interferer_util: Vec<f64>,
    /// Total drops at this tier.
    pub drops_total: u64,
    /// Highest observed queue depth.
    pub peak_queue: usize,
    /// Completed process spawns (Apache second process).
    pub spawns: u64,
    /// Resilience counters for the hop into this tier (tier 0 carries the
    /// client hop: timeouts, app retries, breaker transitions, sheds).
    pub resilience: ResilienceStats,
    /// Per-replica breakdown when the tier is a replica set (`replicas > 1`
    /// in its [`crate::TierSpec`]); empty for single-instance tiers, whose
    /// tier-level fields *are* the instance's data.
    pub replicas: Vec<ReplicaReport>,
}

impl TierReport {
    /// Mean own-CPU utilization through `horizon`.
    pub fn mean_util(&self, horizon: SimDuration) -> f64 {
        let windows = (horizon.as_micros() / SimDuration::from_millis(50).as_micros()).max(1);
        self.util.mean_utilization(windows as usize - 1)
    }

    /// Physical-core utilization per window: own + interferer, capped at 1.
    pub fn combined_util(&self) -> Vec<f64> {
        let own = self.util.utilizations();
        let n = own.len().max(self.interferer_util.len());
        (0..n)
            .map(|i| {
                let a = own.get(i).copied().unwrap_or(0.0);
                let b = self.interferer_util.get(i).copied().unwrap_or(0.0);
                (a + b).min(1.0)
            })
            .collect()
    }
}

/// The result of one experiment run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Discrete events the engine handled within the horizon — the
    /// denominator-independent work measure behind events-per-second
    /// throughput benchmarks.
    pub events: u64,
    /// Requests injected (client sends, not counting TCP retransmissions).
    pub injected: u64,
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub failed: u64,
    /// Requests rejected fast by a breaker or shed policy before (or at)
    /// admission — a terminal outcome distinct from `failed`.
    pub shed: u64,
    /// Hedged logical requests whose caller deadline passed with
    /// cancellation enabled: the caller gave up *and revoked* the
    /// outstanding attempts instead of letting them run on as orphans.
    pub cancelled: u64,
    /// Requests still in flight when the horizon ended.
    pub in_flight_end: u64,
    /// Completed requests per second.
    pub throughput: f64,
    /// End-to-end response-time histogram (completed requests).
    pub latency: LatencyHistogram,
    /// Completed requests slower than 3 s.
    pub vlrt_total: u64,
    /// Messages dropped anywhere in the system.
    pub drops_total: u64,
    /// Per-tier measurements (0 = web, 1 = app, 2 = db).
    pub tiers: Vec<TierReport>,
    /// VLRT completions per 50 ms window (at completion time).
    pub vlrt_by_completion: WindowedSeries,
    /// Per-request-class statistics, sorted by class name.
    pub classes: Vec<ClassReport>,
    /// Whole-run resilience counters (sum of the per-tier hop counters).
    pub resilience: ResilienceStats,
    /// Retained per-request traces, when the run had tracing enabled
    /// (`None` for untraced runs — the common case).
    pub trace: Option<TraceLog>,
    /// The control plane's decision log, when the run had a controller
    /// (`None` for uncontrolled runs).
    pub control: Option<ControlLog>,
    /// The streaming metrics registry — periodic snapshots, the run-level
    /// quantile sketch and the bounded-memory ring series — when the run
    /// had the metrics plane enabled (`None` for unmetered runs).
    pub metrics: Option<MetricsRegistry>,
    /// A fault reported by a streaming workload source (e.g. a trace parse
    /// error that truncated the arrival stream, or a non-monotone arrival
    /// time). `None` for materialized workloads and clean streams.
    pub workload_fault: Option<String>,
}

impl RunReport {
    /// The highest per-tier mean CPU utilization — the paper's "highest
    /// average CPU util." caption number in Fig. 1.
    pub fn highest_mean_util(&self) -> f64 {
        self.tiers
            .iter()
            .map(|t| t.mean_util(self.horizon))
            .fold(0.0, f64::max)
    }

    /// Latency modes (clusters), for multi-modality assertions; uses the
    /// paper-standard 500 ms gap and a minimum cluster mass of 3.
    pub fn latency_modes(&self) -> Vec<Mode> {
        self.latency.modes(SimDuration::from_millis(500), 3)
    }

    /// `true` if any mode sits within ±0.5 s of `peak_secs`.
    pub fn has_mode_near(&self, peak_secs: u64) -> bool {
        let lo = SimDuration::from_millis(peak_secs * 1_000 - 500);
        let hi = SimDuration::from_millis(peak_secs * 1_000 + 500);
        self.latency_modes()
            .iter()
            .any(|m| m.peak >= lo && m.peak <= hi)
    }

    /// Fraction of completed requests that are VLRT.
    pub fn vlrt_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.vlrt_total as f64 / self.completed as f64
        }
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "horizon {}  injected {}  completed {}  failed {}  shed {}  cancelled {}  in-flight {}\n",
            self.horizon,
            self.injected,
            self.completed,
            self.failed,
            self.shed,
            self.cancelled,
            self.in_flight_end
        ));
        s.push_str(&format!(
            "throughput {:.1} req/s  drops {}  VLRT {} ({:.3}%)  highest mean CPU {:.0}%\n",
            self.throughput,
            self.drops_total,
            self.vlrt_total,
            self.vlrt_fraction() * 100.0,
            self.highest_mean_util() * 100.0
        ));
        if !self.resilience.is_quiet() {
            s.push_str(&format!(
                "resilience: timeouts {}  app retries {}  budget-exhausted {}  shed {}  breaker transitions {}  orphan completions {}\n",
                self.resilience.timeouts,
                self.resilience.retries,
                self.resilience.budget_exhausted,
                self.resilience.shed,
                self.resilience.breaker_transitions,
                self.resilience.orphan_completions
            ));
            if self.resilience.hedges > 0 || self.resilience.cancels_propagated > 0 {
                s.push_str(&format!(
                    "hedging: hedges {}  cancels propagated {}  wasted work saved {}\n",
                    self.resilience.hedges,
                    self.resilience.cancels_propagated,
                    self.resilience.wasted_work_saved
                ));
            }
        }
        if let Some(c) = &self.control {
            s.push_str(&format!("control: {}\n", c.summary()));
        }
        for t in &self.tiers {
            s.push_str(&format!(
                "  {:<8} [{}] cap {:>5}  peak queue {:>5}  drops {:>5}  mean CPU {:>5.1}%  spawns {}\n",
                t.name,
                t.arch,
                t.capacity,
                t.peak_queue,
                t.drops_total,
                t.mean_util(self.horizon) * 100.0,
                t.spawns
            ));
            for r in &t.replicas {
                s.push_str(&format!(
                    "    {:<8} #{}            peak queue {:>5}  drops {:>5}\n",
                    t.name, r.id, r.peak_queue, r.drops_total
                ));
            }
        }
        s
    }

    /// Conservation check: injected == completed + failed + shed +
    /// cancelled + in-flight. Used by tests; always true for a correct
    /// engine.
    pub fn is_conserved(&self) -> bool {
        self.injected
            == self.completed + self.failed + self.shed + self.cancelled + self.in_flight_end
    }

    /// The per-class report for `class`, if any requests of it completed
    /// or dropped.
    pub fn class(&self, class: &str) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// The per-tier telemetry in the shape the trace analyzer joins
    /// against: own utilization, interferer utilization, and drop counts
    /// per 50 ms window, for each tier in chain order.
    pub fn trace_tier_data(&self) -> Vec<TierData> {
        self.tiers
            .iter()
            .map(|t| TierData {
                name: t.name.clone(),
                util: t.util.utilizations(),
                interferer_util: t.interferer_util.clone(),
                drops: t.drops.sums(),
                replicas: t
                    .replicas
                    .iter()
                    .map(|r| TierData {
                        name: t.name.clone(),
                        util: r.util.utilizations(),
                        interferer_util: r.interferer_util.clone(),
                        drops: r.drops.sums(),
                        replicas: Vec::new(),
                    })
                    .collect(),
            })
            .collect()
    }

    /// The controller's decisions in the shape the trace analyzer joins
    /// against ([`ntier_trace::RootCause::analyze_with_actions`]); empty
    /// for uncontrolled runs.
    pub fn control_actions(&self) -> Vec<ControlAction> {
        self.control
            .as_ref()
            .map(|log| {
                log.decisions
                    .iter()
                    .map(|d| ControlAction {
                        at: d.at,
                        tier: d.action.tier(),
                        label: d.action.label(),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Per-request-class statistics (the paper's Fig. 4 narrative: during
/// upstream CTQO even *static* requests — which never touch the app tier —
/// queue and drop at the web tier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Request class name ("static", "view_story", ...).
    pub class: &'static str,
    /// Completed requests of this class.
    pub completed: u64,
    /// Completed requests of this class slower than 3 s.
    pub vlrt: u64,
    /// Messages of this class dropped anywhere in the chain.
    pub drops: u64,
    /// Requests of this class shed by a breaker or shed policy.
    pub shed: u64,
    /// Mean end-to-end latency of completed requests.
    pub mean_latency: SimDuration,
}

/// A drop event record for analysis (site + time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Tier index where the drop occurred.
    pub tier: usize,
    /// Replica of that tier the connection attempt was balanced to.
    pub replica: ReplicaId,
    /// When it occurred.
    pub at: SimTime,
}
